// Package trace provides the small reporting toolkit the experiment
// harnesses share: typed result tables with aligned text rendering and CSV
// export, and numeric series for figure-style outputs.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is an ordered collection of rows under named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v unless already strings.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("trace: row has %d values, table has %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	a := x
	if a < 0 {
		a = -a
	}
	switch {
	case a == 0:
		return "0"
	case a >= 1000:
		return fmt.Sprintf("%.0f", x)
	case a >= 10:
		return fmt.Sprintf("%.1f", x)
	case a >= 0.01:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.2e", x)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as CSV (comma-separated, quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named (x, y) sequence — the text analogue of one figure curve.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a titled bundle of series (one per curve).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers, and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render writes the figure as a table with one x column and one column per
// series (rows aligned by index; series of different lengths are padded).
func (f *Figure) Render(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s (y: %s)", f.Title, f.YLabel), cols...)
	maxLen := 0
	for _, s := range f.Series {
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]interface{}, 0, len(cols))
		x := ""
		for _, s := range f.Series {
			if i < len(s.X) {
				x = formatFloat(s.X[i])
				break
			}
		}
		row = append(row, x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}
