package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 1234.0)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1234") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Alignment: both data rows start their second column at the same offset.
	if strings.Index(lines[3], "1.5") != strings.Index(lines[4], "1234") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234.6:  "1235",
		42.123:  "42.1",
		0.5:     "0.500",
		0.00001: "1.00e-05",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", 2.0)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "\"x,y\"") {
		t.Fatalf("comma not quoted: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header wrong: %q", out)
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("fig", "k", "inertia")
	s1 := f.AddSeries("semantic")
	s1.Add(1, 10)
	s1.Add(2, 5)
	s2 := f.AddSeries("jaccard")
	s2.Add(1, 12)
	out := f.String()
	if !strings.Contains(out, "semantic") || !strings.Contains(out, "jaccard") {
		t.Fatalf("missing series:\n%s", out)
	}
	if !strings.Contains(out, "fig (y: inertia)") {
		t.Fatalf("missing title:\n%s", out)
	}
	// Shorter series padded, not crashed.
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Fatalf("row count wrong:\n%s", out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := NewTable("md", "a", "b")
	tb.AddRow("x", 1.0)
	var buf strings.Builder
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "**md**") || !strings.Contains(out, "| a | b |") ||
		!strings.Contains(out, "| --- | --- |") || !strings.Contains(out, "| x | 1.000 |") {
		t.Fatalf("markdown output wrong:\n%s", out)
	}
}
