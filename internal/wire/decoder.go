package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Header is the parsed fixed-size prefix of one message, yielded by
// Decoder.Next before the payload is materialized.
type Header struct {
	Kind    Kind
	SrcPart int32
	Target  int32
	// N is the payload value count.
	N int
}

// Decoder iterates the messages of an encoded batch buffer in place: no
// []*Message slice, no per-message payload allocation. Next parses and
// validates one header; the payload is then consumed either by AXPY (fused
// decode-and-accumulate straight into an output row, the hot path of the
// worker runtime's receive phase) or by Read (into a caller-owned scratch
// slice, for group messages that fan out to several rows).
//
// Decoder performs the same validation as Decode — declared lengths are
// checked against the remaining buffer in int64 arithmetic, bit widths
// outside 1..16 are rejected — so a corrupt or truncated buffer yields an
// error, never a panic or an attacker-sized allocation.
//
// The decoder borrows the buffer; decoded values must be copied (AXPY/Read do
// exactly that) and callers must not retain sub-slices of buf.
type Decoder struct {
	b []byte
	// pending payload (set by Next, consumed by AXPY/Read)
	payload  []byte
	bits     int
	lo, step float64
	n        int
}

// NewDecoder returns a decoder positioned at the first message of buf.
func NewDecoder(buf []byte) Decoder { return Decoder{b: buf} }

// More reports whether undecoded messages remain.
func (d *Decoder) More() bool { return len(d.b) > 0 }

// Next parses and validates the next message header, leaving its payload
// pending for AXPY or Read. Calling Next again without consuming the payload
// skips it.
func (d *Decoder) Next() (Header, error) {
	b := d.b
	if len(b) < HeaderBytes {
		return Header{}, fmt.Errorf("wire: short header (%d bytes)", len(b))
	}
	kind := Kind(b[0])
	if kind != KindNode && kind != KindGroup {
		return Header{}, fmt.Errorf("wire: unknown kind %d", b[0])
	}
	if b[2]&^FlagAdaptive != 0 {
		return Header{}, fmt.Errorf("wire: unknown flags %#x", b[2])
	}
	adaptive := b[2]&FlagAdaptive != 0
	hd := Header{
		Kind:    kind,
		SrcPart: int32(binary.LittleEndian.Uint32(b[4:])),
		Target:  int32(binary.LittleEndian.Uint32(b[8:])),
		N:       int(binary.LittleEndian.Uint32(b[12:])),
	}
	if bits := int(b[1]); bits > 0 {
		if bits > 16 {
			return Header{}, fmt.Errorf("wire: quantized bits %d out of 1..16", bits)
		}
		meta := 8
		if adaptive {
			meta = 9
		}
		need := int64(HeaderBytes) + int64(meta) + (int64(hd.N)*int64(bits)+7)/8
		if int64(len(b)) < need {
			return Header{}, fmt.Errorf("wire: truncated quantized payload: have %d bytes, need %d", len(b), need)
		}
		if adaptive && int(b[HeaderBytes+8]) != bits {
			return Header{}, fmt.Errorf("wire: adaptive width byte %d disagrees with header bits %d", b[HeaderBytes+8], bits)
		}
		d.lo = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[HeaderBytes:])))
		d.step = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[HeaderBytes+4:])))
		d.payload = b[HeaderBytes+meta : need]
		d.bits = bits
		d.b = b[need:]
	} else if adaptive {
		return Header{}, fmt.Errorf("wire: adaptive flag on fp32 payload")
	} else {
		need := int64(HeaderBytes) + 4*int64(hd.N)
		if int64(len(b)) < need {
			return Header{}, fmt.Errorf("wire: truncated payload: have %d bytes, need %d", len(b), need)
		}
		d.payload = b[HeaderBytes:need]
		d.bits = 0
		d.b = b[need:]
	}
	d.n = hd.N
	return hd, nil
}

// AXPY decodes the pending payload, accumulating alpha·payload[i] into
// dst[i]. dst must hold exactly the payload's value count. The arithmetic is
// bit-identical to decoding into a fresh slice and calling tensor.AXPY: each
// wire value becomes a float64 first, then one multiply-add.
func (d *Decoder) AXPY(alpha float64, dst []float64) error {
	if len(dst) != d.n {
		return fmt.Errorf("wire: AXPY dst holds %d values, payload has %d", len(dst), d.n)
	}
	if d.bits == 0 {
		p := d.payload
		for i := range dst {
			dst[i] += alpha * float64(math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:])))
		}
		return nil
	}
	data := d.payload
	var acc uint64
	var accBits uint
	di := 0
	bits := uint(d.bits)
	mask := uint64(1)<<bits - 1
	for i := 0; i < d.n; i++ {
		for accBits < bits {
			acc |= uint64(data[di]) << accBits
			di++
			accBits += 8
		}
		q := acc & mask
		acc >>= bits
		accBits -= bits
		dst[i] += alpha * (d.lo + float64(q)*d.step)
	}
	return nil
}

// Read decodes the pending payload into dst, overwriting it. dst must hold
// exactly the payload's value count.
func (d *Decoder) Read(dst []float64) error {
	if len(dst) != d.n {
		return fmt.Errorf("wire: Read dst holds %d values, payload has %d", len(dst), d.n)
	}
	if d.bits == 0 {
		p := d.payload
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:])))
		}
		return nil
	}
	data := d.payload
	var acc uint64
	var accBits uint
	di := 0
	bits := uint(d.bits)
	mask := uint64(1)<<bits - 1
	for i := 0; i < d.n; i++ {
		for accBits < bits {
			acc |= uint64(data[di]) << accBits
			di++
			accBits += 8
		}
		q := acc & mask
		acc >>= bits
		accBits -= bits
		dst[i] = d.lo + float64(q)*d.step
	}
	return nil
}
