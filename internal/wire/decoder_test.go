package wire

import (
	"math/rand"
	"strings"
	"testing"
)

func buildMixedBatch(t *testing.T, rng *rand.Rand, dim, n int, bits int) (*Batch, []*Message) {
	t.Helper()
	var b Batch
	var msgs []*Message
	for i := 0; i < n; i++ {
		m := &Message{Kind: KindNode, SrcPart: int32(i % 3), Target: int32(i)}
		if i%2 == 1 {
			m.Kind = KindGroup
		}
		m.Payload = make([]float64, dim)
		for j := range m.Payload {
			m.Payload[j] = float64(float32(rng.NormFloat64()))
		}
		if bits > 0 {
			b.AddQuantized(m, bits)
		} else {
			b.Add(m)
		}
		msgs = append(msgs, m)
	}
	return &b, msgs
}

// TestDecoderMatchesDecodeAll: the streaming decoder must yield exactly the
// messages DecodeAll materializes — same headers, bit-identical payload
// values — for both fp32 and quantized batches.
func TestDecoderMatchesDecodeAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{0, 4, 8, 13} {
		b, _ := buildMixedBatch(t, rng, 7, 9, bits)
		want, err := DecodeAll(b.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(b.Bytes())
		scratch := make([]float64, 7)
		var i int
		for dec.More() {
			hd, err := dec.Next()
			if err != nil {
				t.Fatalf("bits=%d msg %d: %v", bits, i, err)
			}
			w := want[i]
			if hd.Kind != w.Kind || hd.SrcPart != w.SrcPart || hd.Target != w.Target || hd.N != len(w.Payload) {
				t.Fatalf("bits=%d msg %d: header %+v vs message %+v", bits, i, hd, w)
			}
			if err := dec.Read(scratch); err != nil {
				t.Fatal(err)
			}
			for j := range scratch {
				if scratch[j] != w.Payload[j] {
					t.Fatalf("bits=%d msg %d value %d: %v vs %v", bits, i, j, scratch[j], w.Payload[j])
				}
			}
			i++
		}
		if i != len(want) {
			t.Fatalf("bits=%d: decoder yielded %d messages, DecodeAll %d", bits, i, len(want))
		}
	}
}

// TestDecoderAXPYMatchesManual: fused decode-and-accumulate must be
// bit-identical to Read followed by a float64 multiply-add.
func TestDecoderAXPYMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range []int{0, 6} {
		b, _ := buildMixedBatch(t, rng, 5, 4, bits)

		manual := make([]float64, 5)
		dec := NewDecoder(b.Bytes())
		scratch := make([]float64, 5)
		for dec.More() {
			if _, err := dec.Next(); err != nil {
				t.Fatal(err)
			}
			if err := dec.Read(scratch); err != nil {
				t.Fatal(err)
			}
			for j, v := range scratch {
				manual[j] += 0.37 * v
			}
		}

		fused := make([]float64, 5)
		dec = NewDecoder(b.Bytes())
		for dec.More() {
			if _, err := dec.Next(); err != nil {
				t.Fatal(err)
			}
			if err := dec.AXPY(0.37, fused); err != nil {
				t.Fatal(err)
			}
		}
		for j := range fused {
			if fused[j] != manual[j] {
				t.Fatalf("bits=%d value %d: fused %v vs manual %v", bits, j, fused[j], manual[j])
			}
		}
	}
}

// TestDecoderCorruptInputs: every malformed buffer shape must yield an error,
// never a panic or a bogus message.
func TestDecoderCorruptInputs(t *testing.T) {
	var b Batch
	b.Add(&Message{Kind: KindNode, SrcPart: 1, Target: 2, Payload: []float64{1, 2, 3}})
	good := b.Bytes()

	cases := map[string][]byte{
		"short header":      good[:HeaderBytes-3],
		"garbage":           {0xde, 0xad, 0xbe, 0xef},
		"unknown kind":      append([]byte{99}, good[1:]...),
		"truncated payload": good[:len(good)-2],
	}
	// Declared length far past the buffer.
	huge := append([]byte(nil), good...)
	huge[12], huge[13], huge[14], huge[15] = 0xff, 0xff, 0xff, 0x7f
	cases["hostile length"] = huge
	// Quantized bit width out of range.
	badBits := append([]byte(nil), good...)
	badBits[1] = 40
	cases["bad bits"] = badBits

	for name, buf := range cases {
		dec := NewDecoder(buf)
		var gotErr error
		for dec.More() {
			if _, err := dec.Next(); err != nil {
				gotErr = err
				break
			}
			if err := dec.Read(make([]float64, 3)); err != nil {
				gotErr = err
				break
			}
		}
		if gotErr == nil {
			t.Fatalf("%s: decoder accepted corrupt buffer", name)
		}
	}
}

// TestDecoderLengthMismatch: AXPY/Read must reject a destination that
// doesn't match the payload's value count instead of misreading the buffer.
func TestDecoderLengthMismatch(t *testing.T) {
	var b Batch
	b.Add(&Message{Kind: KindNode, Target: 1, Payload: []float64{1, 2, 3}})
	dec := NewDecoder(b.Bytes())
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if err := dec.AXPY(1, make([]float64, 2)); err == nil || !strings.Contains(err.Error(), "3") {
		t.Fatalf("AXPY accepted wrong-size dst: %v", err)
	}
	if err := dec.Read(make([]float64, 4)); err == nil {
		t.Fatal("Read accepted wrong-size dst")
	}
}

// TestBatchResetReusesBuffer: Reset must keep the encode buffer's capacity so
// persistent workers re-encode in place.
func TestBatchResetReusesBuffer(t *testing.T) {
	var b Batch
	m := &Message{Kind: KindNode, Target: 1, Payload: make([]float64, 16)}
	b.Add(m)
	grown := cap(b.buf)
	b.Reset()
	if b.Len() != 0 || len(b.Bytes()) != 0 {
		t.Fatalf("reset batch not empty: len=%d bytes=%d", b.Len(), len(b.Bytes()))
	}
	if cap(b.buf) != grown {
		t.Fatalf("reset dropped buffer capacity: %d vs %d", cap(b.buf), grown)
	}
	allocs := testing.AllocsPerRun(20, func() {
		b.Reset()
		b.Add(m)
	})
	if allocs != 0 {
		t.Fatalf("re-encoding into a reset batch allocates %v times", allocs)
	}
}

// TestEncodeQuantizedRoundtripMatchesDecoder: the roundtrip values handed to
// the sender must be bit-identical to what the receiver decodes — the
// property the worker runtime's error feedback depends on.
func TestEncodeQuantizedRoundtripMatchesDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payload := make([]float64, 11)
	for i := range payload {
		payload[i] = rng.NormFloat64() * 3
	}
	m := &Message{Kind: KindNode, Target: 7, Payload: payload}
	rt := make([]float64, len(payload))
	buf := EncodeQuantizedRoundtrip(nil, m, 4, rt)

	got, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	for i := range rt {
		if got.Payload[i] != rt[i] {
			t.Fatalf("value %d: roundtrip %v vs decoded %v", i, rt[i], got.Payload[i])
		}
	}
	// Size mismatch must panic (programming error, not wire corruption).
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short roundtrip slice")
		}
	}()
	EncodeQuantizedRoundtrip(nil, m, 4, rt[:3])
}
