package wire

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
)

// The wire format sits on the trust boundary of the worker runtime: every
// byte a worker receives was produced by a peer, and a corrupt batch must
// surface as an error from the round — never a panic in a pool goroutine or
// an attacker-sized allocation. Two native fuzz targets lock that down:
//
//   - FuzzDecoder feeds arbitrary bytes to both decode paths (allocating
//     DecodeAll and the zero-alloc streaming Decoder) and requires them to
//     agree exactly — same messages, or the same error.
//   - FuzzBatchRoundtrip drives the encoder from a fuzzed construction
//     script across every message variant (fp32, fixed quantized, adaptive,
//     roundtrip) and checks size accounting, decode fidelity, and the
//     error-feedback contract (roundtrip values bit-equal the decode).
//
// The seed corpus under testdata/fuzz/ is generated from real encoded
// batches by TestFuzzSeedCorpus (run with -update-corpus to regenerate) so
// `go test` always exercises the seeds and `go test -fuzz` starts from
// representative valid and hostile inputs.

// sameF64 reports bitwise float equality: the wire can legitimately carry
// NaN and ±0 payloads (an fp32 bit pattern is whatever the peer sent), so
// differential checks must not let NaN != NaN mask a real divergence.
func sameF64(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// streamDecode decodes buf with the streaming Decoder, exercising both
// payload consumers: Read fills the returned payload, and AXPY with alpha=1
// into a zeroed slice must reproduce it bit-for-bit (the fused
// decode-and-accumulate the worker receive phase runs).
func streamDecode(t *testing.T, buf []byte) ([]*Message, error) {
	t.Helper()
	var out []*Message
	dec := NewDecoder(buf)
	for dec.More() {
		hd, err := dec.Next()
		if err != nil {
			return out, err
		}
		vals := make([]float64, hd.N)
		if err := dec.Read(vals); err != nil {
			t.Fatalf("Read after valid Next: %v", err)
		}
		acc := make([]float64, hd.N)
		if err := dec.AXPY(1, acc); err != nil {
			t.Fatalf("AXPY after valid Next: %v", err)
		}
		for i := range vals {
			// NaN payloads compare bitwise; a -0 payload accumulates to +0
			// (IEEE 0 + -0), so ±0 compare numerically.
			if acc[i] != vals[i] && !sameF64(acc[i], vals[i]) {
				t.Fatalf("AXPY(1) payload[%d] = %v, Read = %v", i, acc[i], vals[i])
			}
		}
		out = append(out, &Message{Kind: hd.Kind, SrcPart: hd.SrcPart, Target: hd.Target, Payload: vals})
	}
	return out, nil
}

// FuzzDecoder is the differential robustness target: on arbitrary bytes the
// allocating decoder and the streaming decoder must both finish without
// panicking and agree — identical message sequences on success, identical
// errors on failure. A success additionally bounds the total decoded value
// count by the input size, proving no length field inflated an allocation.
func FuzzDecoder(f *testing.F) {
	for _, seed := range decoderSeeds() {
		f.Add(seed.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		full, fullErr := DecodeAll(data)
		stream, streamErr := streamDecode(t, data)
		if (fullErr == nil) != (streamErr == nil) {
			t.Fatalf("decode paths disagree: DecodeAll err=%v, Decoder err=%v", fullErr, streamErr)
		}
		if fullErr != nil {
			// Both decoders run the same validation, so the error text —
			// which names the offending field — must match too.
			if fullErr.Error() != streamErr.Error() {
				t.Fatalf("decode errors disagree: %q vs %q", fullErr, streamErr)
			}
			return
		}
		if len(full) != len(stream) {
			t.Fatalf("DecodeAll got %d messages, Decoder got %d", len(full), len(stream))
		}
		total := 0
		for i, m := range full {
			s := stream[i]
			if m.Kind != s.Kind || m.SrcPart != s.SrcPart || m.Target != s.Target {
				t.Fatalf("message %d header: DecodeAll %+v, Decoder %+v", i, m, s)
			}
			if len(m.Payload) != len(s.Payload) {
				t.Fatalf("message %d payload length: %d vs %d", i, len(m.Payload), len(s.Payload))
			}
			for j := range m.Payload {
				if !sameF64(m.Payload[j], s.Payload[j]) {
					t.Fatalf("message %d payload[%d]: %v vs %v", i, j, m.Payload[j], s.Payload[j])
				}
			}
			total += len(m.Payload)
		}
		// Every accepted value occupies ≥1 bit on the wire, so a valid batch
		// can never decode more than 8·len(data) values.
		if total > 8*len(data) {
			t.Fatalf("decoded %d values from %d input bytes", total, len(data))
		}
	})
}

// FuzzBatchRoundtrip drives the encoder from a fuzzed construction script
// and checks the full wire contract on the result: batch size equals the
// EncodedSize* accounting (what the traffic parity tests rely on), decode
// recovers headers exactly and payloads within the quantization error bound,
// and the Roundtrip variants report bit-exactly what the receiver decodes —
// the invariant error feedback depends on.
func FuzzBatchRoundtrip(f *testing.F) {
	for _, seed := range roundtripSeeds() {
		f.Add(seed.data)
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		msgs, batch, wantSize := buildScripted(script)
		if got := len(batch.Bytes()); got != wantSize {
			t.Fatalf("batch holds %d bytes, size accounting says %d", got, wantSize)
		}
		if batch.Len() != len(msgs) {
			t.Fatalf("batch counts %d messages, script built %d", batch.Len(), len(msgs))
		}
		decoded, err := DecodeAll(batch.Bytes())
		if err != nil {
			t.Fatalf("valid batch failed to decode: %v", err)
		}
		stream, serr := streamDecode(t, batch.Bytes())
		if serr != nil {
			t.Fatalf("valid batch failed streaming decode: %v", serr)
		}
		if len(decoded) != len(msgs) || len(stream) != len(msgs) {
			t.Fatalf("decoded %d/%d messages, want %d", len(decoded), len(stream), len(msgs))
		}
		for i, sm := range msgs {
			got := decoded[i]
			if got.Kind != sm.m.Kind || got.SrcPart != sm.m.SrcPart || got.Target != sm.m.Target {
				t.Fatalf("message %d header %+v, want %+v", i, got, sm.m)
			}
			if len(got.Payload) != len(sm.m.Payload) {
				t.Fatalf("message %d payload length %d, want %d", i, len(got.Payload), len(sm.m.Payload))
			}
			bound := sm.errorBound()
			for j, want := range sm.m.Payload {
				if d := got.Payload[j] - want; d > bound || d < -bound {
					t.Fatalf("message %d (bits=%d) payload[%d] error %v > %v", i, sm.bits, j, d, bound)
				}
				// Streaming decode of the same bytes is bit-identical.
				if stream[i].Payload[j] != got.Payload[j] {
					t.Fatalf("message %d payload[%d]: streaming %v, DecodeAll %v",
						i, j, stream[i].Payload[j], got.Payload[j])
				}
				// The sender-side roundtrip is exactly the receiver's view.
				if sm.rt != nil && sm.rt[j] != got.Payload[j] {
					t.Fatalf("message %d roundtrip[%d] = %v, receiver decoded %v",
						i, j, sm.rt[j], got.Payload[j])
				}
			}
		}
	})
}

// scripted is one message built by buildScripted plus how it was encoded.
type scripted struct {
	m        *Message
	bits     int // 0 = fp32
	adaptive bool
	rt       []float64 // roundtrip output, nil unless a Roundtrip variant
}

// errorBound returns the maximum absolute reconstruction error the encoding
// admits: zero for fp32 (script payloads are exactly representable), half a
// quantization step plus fp32 metadata slop otherwise.
func (s *scripted) errorBound() float64 {
	if s.bits == 0 {
		return 0
	}
	lo, hi := 0.0, 0.0
	if len(s.m.Payload) > 0 {
		lo, hi = s.m.Payload[0], s.m.Payload[0]
		for _, v := range s.m.Payload {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	levels := float64(int(1)<<uint(s.bits)) - 1
	return (hi-lo)/levels/2 + 1e-4
}

// buildScripted interprets script as a message construction program: each
// message consumes a 4-byte opcode (variant/kind/src, bits, payload length,
// target) followed by its payload bytes, decoded as sixteenths so every
// value is exactly representable in fp32.
func buildScripted(script []byte) ([]scripted, *Batch, int) {
	var out []scripted
	var b Batch
	size := 0
	for len(script) >= 4 {
		op, bb, nn, tt := script[0], script[1], script[2], script[3]
		script = script[4:]
		kind := KindNode
		if op&1 != 0 {
			kind = KindGroup
		}
		bits := 1 + int(bb)%16
		n := int(nn) % 33
		if n > len(script) {
			n = len(script)
		}
		payload := make([]float64, n)
		for i := range payload {
			payload[i] = float64(int8(script[i])) / 16
		}
		script = script[n:]
		s := scripted{
			m:    &Message{Kind: kind, SrcPart: int32(op >> 4), Target: int32(tt), Payload: payload},
			bits: bits,
		}
		switch (op >> 1) & 3 {
		case 0: // fp32
			s.bits = 0
			b.Add(s.m)
			size += EncodedSize(n)
		case 1: // fixed-width quantized
			b.AddQuantized(s.m, s.bits)
			size += EncodedSizeQuantized(n, s.bits)
		case 2: // adaptive width
			s.adaptive = true
			b.AddAdaptive(s.m, s.bits)
			size += EncodedSizeAdaptive(n, s.bits)
		default: // roundtrip variants (op bit 3 picks adaptive)
			s.rt = make([]float64, n)
			if op&8 != 0 {
				s.adaptive = true
				b.AddAdaptiveRoundtrip(s.m, s.bits, s.rt)
				size += EncodedSizeAdaptive(n, s.bits)
			} else {
				b.AddQuantizedRoundtrip(s.m, s.bits, s.rt)
				size += EncodedSizeQuantized(n, s.bits)
			}
		}
		out = append(out, s)
	}
	return out, &b, size
}

// corpusSeed is one named seed-corpus entry.
type corpusSeed struct {
	name string
	data []byte
}

// decoderSeeds returns the FuzzDecoder seed corpus: real encoded batches of
// every message variant the worker runtime ships (the traffic of vanilla,
// semantic, quantized, adaptive, and error-feedback rounds all reduces to
// these encodings), plus the hostile shapes the hand-written tests pin down.
func decoderSeeds() []corpusSeed {
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }
	pay := []float64{-1, -0.5, 0, 0.5, 1, 2}

	var mixed Batch
	mixed.Add(&Message{Kind: KindNode, SrcPart: 0, Target: 7, Payload: []float64{1, -2.5, 0.25}})
	mixed.Add(&Message{Kind: KindNode, SrcPart: 1, Target: 8,
		Payload: []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}})
	mixed.Add(&Message{Kind: KindGroup, SrcPart: 1, Target: 3, Payload: []float64{0.5}})
	mixed.Add(&Message{Kind: KindNode, SrcPart: 2, Target: 9, Payload: nil})

	var quant Batch
	for _, bits := range []int{1, 4, 8, 16} {
		quant.AddQuantized(&Message{Kind: KindNode, SrcPart: 0, Target: int32(bits), Payload: pay}, bits)
	}

	var adaptive Batch
	adaptive.AddAdaptive(&Message{Kind: KindGroup, SrcPart: 1, Target: 4, Payload: pay}, 2)
	rt := make([]float64, len(pay))
	adaptive.AddAdaptiveRoundtrip(&Message{Kind: KindNode, SrcPart: 2, Target: 5, Payload: pay}, 8, rt)
	adaptive.AddQuantizedRoundtrip(&Message{Kind: KindGroup, SrcPart: 0, Target: 6, Payload: pay}, 4, rt)

	truncated := clone(mixed.Bytes())
	truncated = truncated[:len(truncated)-3]
	badKind := clone(mixed.Bytes())
	badKind[0] = 99
	badFlags := clone(adaptive.Bytes())
	badFlags[2] = 0x80
	fp32Adaptive := Encode(nil, &Message{Kind: KindNode, Target: 1, Payload: pay})
	fp32Adaptive[2] = FlagAdaptive
	widthMismatch := EncodeAdaptive(nil, &Message{Kind: KindNode, Target: 2, Payload: pay}, 6)
	widthMismatch[HeaderBytes+8] = 7
	hugeLen := make([]byte, HeaderBytes)
	hugeLen[0] = byte(KindNode)
	for i := 12; i < 16; i++ {
		hugeLen[i] = 0xff
	}

	return []corpusSeed{
		{"empty", []byte{}},
		{"mixed-fp32", clone(mixed.Bytes())},
		{"quantized-widths", clone(quant.Bytes())},
		{"adaptive", clone(adaptive.Bytes())},
		{"hostile-truncated", truncated},
		{"hostile-kind", badKind},
		{"hostile-flags", badFlags},
		{"hostile-fp32-adaptive", fp32Adaptive},
		{"hostile-width-mismatch", widthMismatch},
		{"hostile-huge-length", hugeLen},
	}
}

// roundtripSeeds returns the FuzzBatchRoundtrip seed corpus: construction
// scripts covering each encoder variant (see buildScripted's opcode layout).
func roundtripSeeds() []corpusSeed {
	return []corpusSeed{
		{"fp32-node", []byte{0x00, 0, 3, 1, 16, 240, 32}},
		{"quant-group", []byte{0x03, 7, 4, 2, 1, 2, 3, 4}},
		{"adaptive-node", []byte{0x14, 1, 5, 3, 255, 128, 0, 64, 192}},
		{"roundtrip-quant", []byte{0x06, 3, 4, 4, 10, 20, 30, 40}},
		{"roundtrip-adaptive", []byte{0x0e, 11, 6, 5, 5, 15, 25, 35, 45, 55}},
		{"multi-message", []byte{
			0x00, 0, 2, 1, 16, 32,
			0x02, 7, 3, 2, 1, 2, 3,
			0x0e, 3, 2, 3, 100, 200,
		}},
	}
}

var updateCorpus = flag.Bool("update-corpus", false,
	"rewrite the checked-in fuzz seed corpus under testdata/fuzz/")

// TestFuzzSeedCorpus pins the checked-in seed corpus to the generators
// above: every seed must exist under testdata/fuzz/<FuzzName>/ with the
// exact "go test fuzz v1" encoding of its bytes. Run with -update-corpus to
// regenerate after changing the seeds.
func TestFuzzSeedCorpus(t *testing.T) {
	targets := map[string][]corpusSeed{
		"FuzzDecoder":        decoderSeeds(),
		"FuzzBatchRoundtrip": roundtripSeeds(),
	}
	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, target := range names {
		dir := filepath.Join("testdata", "fuzz", target)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for _, seed := range targets[target] {
			path := filepath.Join(dir, seed.name)
			want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed.data)) + ")\n"
			if *updateCorpus {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("seed corpus file missing (regenerate with -update-corpus): %v", err)
			}
			if string(got) != want {
				t.Fatalf("%s is stale (regenerate with -update-corpus)", path)
			}
		}
	}
	if *updateCorpus {
		t.Log("seed corpus rewritten")
	}
}
