// Package wire defines the binary message format the goroutine-based
// distributed runtime (internal/worker) exchanges between workers: a fixed
// header followed by an fp32 payload vector, mirroring the fp32 tensors a
// gloo/NCCL transport would carry.
//
// The sequential engine in internal/dist *accounts* bytes analytically; this
// package makes them real — every cross-partition value is serialized into a
// byte slice and parsed again on the receiving worker, and the byte sizes
// are asserted equal to the analytic accounting in tests.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind discriminates message semantics at the receiver.
type Kind uint8

const (
	// KindNode carries one node's payload (vanilla / O2O traffic).
	// Target is the global destination node id.
	KindNode Kind = iota + 1
	// KindGroup carries one fused semantic message. Target is the group's
	// index within the (src→dst) plan.
	KindGroup
)

// HeaderBytes is the encoded header size: kind(1) + bits(1) + flags(1) +
// pad(1) + src(4) + target(4) + length(4).
const HeaderBytes = 16

// FlagAdaptive (header flags byte, bit 0) marks a payload quantized at a
// per-message adaptive width. Adaptive messages carry one extra metadata
// byte — the chosen width — after the lo/step pair: a fixed-width receiver
// knows its width from configuration, but an adaptive width is genuinely
// per-message state, the same extra byte AdaQP-style schemes ship and the
// analytic engine charges ((n·bits+7)/8 + 9 vs + 8). Decoders reject any
// other flag bit, and reject adaptive messages whose metadata width byte
// disagrees with the header's bits field.
const FlagAdaptive = 0x01

// Message is one unit of cross-partition traffic.
type Message struct {
	Kind    Kind
	SrcPart int32 // sending worker
	Target  int32 // node id (KindNode) or plan-group index (KindGroup)
	Payload []float64
}

// EncodedSize returns the wire size of a message with n payload values.
func EncodedSize(n int) int { return HeaderBytes + 4*n }

// Encode serializes m, appending to dst (which may be nil) and returning the
// extended slice. Payload values are truncated to fp32 — the same precision
// the paper's training exchanges.
func Encode(dst []byte, m *Message) []byte {
	var hdr [HeaderBytes]byte
	hdr[0] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.SrcPart))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Target))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(m.Payload)))
	dst = append(dst, hdr[:]...)
	var buf [4]byte
	for _, v := range m.Payload {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// Decode parses one message from the front of b, returning the message and
// the remaining bytes. The payload slice is freshly allocated.
//
// Decode never trusts the length or bit-width fields: the declared payload
// size is validated against the remaining buffer (with the arithmetic done
// in int64, so a hostile length cannot overflow the check) before any
// allocation, and bit widths outside the encoder's 1..16 range are rejected
// — so a corrupt or truncated buffer yields an error, never a panic or an
// attacker-sized allocation.
func Decode(b []byte) (*Message, []byte, error) {
	if len(b) < HeaderBytes {
		return nil, b, fmt.Errorf("wire: short header (%d bytes)", len(b))
	}
	kind := Kind(b[0])
	if kind != KindNode && kind != KindGroup {
		return nil, b, fmt.Errorf("wire: unknown kind %d", b[0])
	}
	if b[2]&^FlagAdaptive != 0 {
		return nil, b, fmt.Errorf("wire: unknown flags %#x", b[2])
	}
	adaptive := b[2]&FlagAdaptive != 0
	src := int32(binary.LittleEndian.Uint32(b[4:]))
	target := int32(binary.LittleEndian.Uint32(b[8:]))
	n := int(binary.LittleEndian.Uint32(b[12:]))
	if bits := int(b[1]); bits > 0 {
		if bits > 16 {
			return nil, b, fmt.Errorf("wire: quantized bits %d out of 1..16", bits)
		}
		meta := 8
		if adaptive {
			meta = 9
		}
		need := int64(HeaderBytes) + int64(meta) + (int64(n)*int64(bits)+7)/8
		if int64(len(b)) < need {
			return nil, b, fmt.Errorf("wire: truncated quantized payload: have %d bytes, need %d", len(b), need)
		}
		if adaptive && int(b[HeaderBytes+8]) != bits {
			return nil, b, fmt.Errorf("wire: adaptive width byte %d disagrees with header bits %d", b[HeaderBytes+8], bits)
		}
		return decodeQuantized(b, kind, bits, meta, src, target, n)
	}
	if adaptive {
		return nil, b, fmt.Errorf("wire: adaptive flag on fp32 payload")
	}
	if need := int64(HeaderBytes) + 4*int64(n); int64(len(b)) < need {
		return nil, b, fmt.Errorf("wire: truncated payload: have %d bytes, need %d", len(b), need)
	}
	total := EncodedSize(n)
	payload := make([]float64, n)
	off := HeaderBytes
	for i := range payload {
		bits := binary.LittleEndian.Uint32(b[off:])
		payload[i] = float64(math.Float32frombits(bits))
		off += 4
	}
	return &Message{Kind: kind, SrcPart: src, Target: target, Payload: payload}, b[total:], nil
}

// Batch accumulates encoded messages bound for one destination worker so a
// round's traffic ships as a single framed buffer (the transport-level
// batching gloo performs).
type Batch struct {
	buf   []byte
	count int
}

// Add encodes m into the batch.
func (b *Batch) Add(m *Message) {
	b.buf = Encode(b.buf, m)
	b.count++
}

// Len returns the number of messages in the batch.
func (b *Batch) Len() int { return b.count }

// Bytes returns the encoded buffer (nil when empty).
func (b *Batch) Bytes() []byte { return b.buf }

// Reset empties the batch while retaining its encode buffer, so a persistent
// worker can reuse one Batch per peer across rounds without reallocating.
func (b *Batch) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// DecodeAll parses every message in an encoded batch buffer.
func DecodeAll(buf []byte) ([]*Message, error) {
	var out []*Message
	for len(buf) > 0 {
		m, rest, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		buf = rest
	}
	return out, nil
}

// Quantized payload support: header byte 1 carries the bit width (0 means
// fp32). A quantized message stores the value range as two fp32s (lo, step)
// followed by the bit-packed little-endian payload.

// EncodedSizeQuantized returns the wire size of an n-value payload at the
// given bit width.
func EncodedSizeQuantized(n, bits int) int {
	return HeaderBytes + 8 + (n*bits+7)/8
}

// EncodedSizeAdaptive returns the wire size of an n-value adaptively
// quantized payload at the given bit width (one extra metadata byte carries
// the per-message width).
func EncodedSizeAdaptive(n, bits int) int {
	return HeaderBytes + 9 + (n*bits+7)/8
}

// EncodeQuantized serializes m with b-bit affine quantization of the
// payload (1 ≤ bits ≤ 16). The caller's payload is not modified; the
// receiver reconstructs the dequantized values.
func EncodeQuantized(dst []byte, m *Message, bits int) []byte {
	return encodeQuantized(dst, m, bits, false, nil)
}

// EncodeQuantizedRoundtrip is EncodeQuantized, additionally writing the
// values the receiver will reconstruct into roundtrip (len(m.Payload) values).
// Senders running residual error feedback need exactly what the other side
// will see: the reconstruction uses the fp32-truncated lo/step metadata that
// travels on the wire, so it is bit-identical to the decoder's output.
func EncodeQuantizedRoundtrip(dst []byte, m *Message, bits int, roundtrip []float64) []byte {
	if len(roundtrip) != len(m.Payload) {
		panic(fmt.Sprintf("wire: roundtrip len %d, payload len %d", len(roundtrip), len(m.Payload)))
	}
	return encodeQuantized(dst, m, bits, false, roundtrip)
}

// EncodeAdaptive serializes m quantized at a per-message adaptive width
// (FlagAdaptive set, width repeated in the metadata). The caller — typically
// holding an AdaptiveQuantizer — chooses bits per payload.
func EncodeAdaptive(dst []byte, m *Message, bits int) []byte {
	return encodeQuantized(dst, m, bits, true, nil)
}

// EncodeAdaptiveRoundtrip is EncodeAdaptive with the receiver-reconstructed
// values written into roundtrip (see EncodeQuantizedRoundtrip).
func EncodeAdaptiveRoundtrip(dst []byte, m *Message, bits int, roundtrip []float64) []byte {
	if len(roundtrip) != len(m.Payload) {
		panic(fmt.Sprintf("wire: roundtrip len %d, payload len %d", len(roundtrip), len(m.Payload)))
	}
	return encodeQuantized(dst, m, bits, true, roundtrip)
}

func encodeQuantized(dst []byte, m *Message, bits int, adaptive bool, roundtrip []float64) []byte {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("wire: quantized bits %d out of 1..16", bits))
	}
	var hdr [HeaderBytes]byte
	hdr[0] = byte(m.Kind)
	hdr[1] = byte(bits)
	if adaptive {
		hdr[2] = FlagAdaptive
	}
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.SrcPart))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Target))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(m.Payload)))
	dst = append(dst, hdr[:]...)

	lo, hi := 0.0, 0.0
	if len(m.Payload) > 0 {
		lo, hi = m.Payload[0], m.Payload[0]
		for _, v := range m.Payload {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	levels := float64(int(1)<<uint(bits)) - 1
	step := 0.0
	if hi > lo {
		step = (hi - lo) / levels
	}
	var meta [9]byte
	binary.LittleEndian.PutUint32(meta[0:], math.Float32bits(float32(lo)))
	binary.LittleEndian.PutUint32(meta[4:], math.Float32bits(float32(step)))
	metaLen := 8
	if adaptive {
		meta[8] = byte(bits)
		metaLen = 9
	}
	dst = append(dst, meta[:metaLen]...)
	// The receiver reconstructs with the fp32-truncated metadata it reads off
	// the wire, not the float64 values the quantization grid was built from.
	rtLo := float64(float32(lo))
	rtStep := float64(float32(step))

	// Bit-pack the level indices little-endian.
	var acc uint64
	var accBits uint
	for i, v := range m.Payload {
		var q uint64
		if step > 0 {
			q = uint64(math.Round((v - lo) / step))
			if q > uint64(levels) {
				q = uint64(levels)
			}
		}
		if roundtrip != nil {
			roundtrip[i] = rtLo + float64(q)*rtStep
		}
		acc |= q << accBits
		accBits += uint(bits)
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// decodeQuantized parses a quantized message body. The caller (Decode) has
// already validated bits ∈ 1..16, the metadata size, and that b holds the
// full declared payload.
func decodeQuantized(b []byte, kind Kind, bits, meta int, src, target int32, n int) (*Message, []byte, error) {
	total := HeaderBytes + meta + (n*bits+7)/8
	lo := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[HeaderBytes:])))
	step := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[HeaderBytes+4:])))
	payload := make([]float64, n)
	data := b[HeaderBytes+meta : total]
	var acc uint64
	var accBits uint
	di := 0
	mask := uint64(1)<<uint(bits) - 1
	for i := 0; i < n; i++ {
		for accBits < uint(bits) {
			acc |= uint64(data[di]) << accBits
			di++
			accBits += 8
		}
		q := acc & mask
		acc >>= uint(bits)
		accBits -= uint(bits)
		payload[i] = lo + float64(q)*step
	}
	return &Message{Kind: kind, SrcPart: src, Target: target, Payload: payload}, b[total:], nil
}

// AddQuantized encodes m into the batch with b-bit quantization.
func (b *Batch) AddQuantized(m *Message, bits int) {
	b.buf = EncodeQuantized(b.buf, m, bits)
	b.count++
}

// AddQuantizedRoundtrip encodes m with b-bit quantization and writes the
// receiver-reconstructed values into roundtrip (see EncodeQuantizedRoundtrip).
func (b *Batch) AddQuantizedRoundtrip(m *Message, bits int, roundtrip []float64) {
	b.buf = EncodeQuantizedRoundtrip(b.buf, m, bits, roundtrip)
	b.count++
}

// AddAdaptive encodes m into the batch at a per-message adaptive width.
func (b *Batch) AddAdaptive(m *Message, bits int) {
	b.buf = EncodeAdaptive(b.buf, m, bits)
	b.count++
}

// AddAdaptiveRoundtrip encodes m at a per-message adaptive width and writes
// the receiver-reconstructed values into roundtrip.
func (b *Batch) AddAdaptiveRoundtrip(m *Message, bits int, roundtrip []float64) {
	b.buf = EncodeAdaptiveRoundtrip(b.buf, m, bits, roundtrip)
	b.count++
}
