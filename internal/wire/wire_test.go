package wire

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{Kind: KindGroup, SrcPart: 3, Target: 42, Payload: []float64{1.5, -2.25, 0}}
	buf := Encode(nil, m)
	if len(buf) != EncodedSize(3) {
		t.Fatalf("encoded size = %d, want %d", len(buf), EncodedSize(3))
	}
	got, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
	if got.Kind != m.Kind || got.SrcPart != 3 || got.Target != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, v := range m.Payload {
		if got.Payload[i] != v { // exactly representable values
			t.Fatalf("payload[%d] = %v, want %v", i, got.Payload[i], v)
		}
	}
}

func TestFp32Truncation(t *testing.T) {
	v := 1.0 + 1e-12 // not representable in fp32
	m := &Message{Kind: KindNode, Payload: []float64{v}}
	got, _, err := Decode(Encode(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload[0] == v {
		t.Fatal("expected fp32 truncation")
	}
	if math.Abs(got.Payload[0]-v) > 1e-6 {
		t.Fatalf("truncation error too large: %v", got.Payload[0]-v)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header accepted")
	}
	// Unknown kind.
	buf := Encode(nil, &Message{Kind: KindNode, Payload: []float64{1}})
	buf[0] = 99
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Truncated payload.
	buf = Encode(nil, &Message{Kind: KindNode, Payload: []float64{1, 2, 3}})
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestBatch(t *testing.T) {
	var b Batch
	if b.Bytes() != nil || b.Len() != 0 {
		t.Fatal("empty batch not empty")
	}
	b.Add(&Message{Kind: KindNode, SrcPart: 0, Target: 7, Payload: []float64{1}})
	b.Add(&Message{Kind: KindGroup, SrcPart: 0, Target: 2, Payload: []float64{2, 3}})
	msgs, err := DecodeAll(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || b.Len() != 2 {
		t.Fatalf("batch decoded %d messages", len(msgs))
	}
	if msgs[0].Target != 7 || msgs[1].Kind != KindGroup || len(msgs[1].Payload) != 2 {
		t.Fatalf("batch contents wrong: %+v %+v", msgs[0], msgs[1])
	}
}

func TestDecodeAllCorrupt(t *testing.T) {
	var b Batch
	b.Add(&Message{Kind: KindNode, Payload: []float64{1}})
	buf := append([]byte{}, b.Bytes()...)
	buf = append(buf, 0xFF) // trailing garbage → short header error
	if _, err := DecodeAll(buf); err == nil {
		t.Fatal("corrupt batch accepted")
	}
}

// Property: any message round-trips with fp32 precision, and batches of
// random messages decode to the same sequence.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var batch Batch
		var want []*Message
		for k := 0; k < 1+rng.Intn(10); k++ {
			kind := KindNode
			if rng.Intn(2) == 0 {
				kind = KindGroup
			}
			payload := make([]float64, rng.Intn(20))
			for i := range payload {
				payload[i] = float64(float32(rng.NormFloat64())) // pre-truncate
			}
			m := &Message{
				Kind:    kind,
				SrcPart: int32(rng.Intn(16)),
				Target:  int32(rng.Intn(1 << 20)),
				Payload: payload,
			}
			batch.Add(m)
			want = append(want, m)
		}
		got, err := DecodeAll(batch.Bytes())
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Kind != want[i].Kind || got[i].SrcPart != want[i].SrcPart || got[i].Target != want[i].Target {
				return false
			}
			if len(got[i].Payload) != len(want[i].Payload) {
				return false
			}
			for j := range want[i].Payload {
				if got[i].Payload[j] != want[i].Payload[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode32(b *testing.B) {
	m := &Message{Kind: KindNode, Target: 1, Payload: make([]float64, 32)}
	buf := make([]byte, 0, EncodedSize(32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecode32(b *testing.B) {
	buf := Encode(nil, &Message{Kind: KindNode, Target: 1, Payload: make([]float64, 32)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuantizedRoundTrip(t *testing.T) {
	m := &Message{Kind: KindGroup, SrcPart: 2, Target: 9, Payload: []float64{-1, 0, 0.5, 1}}
	for _, bits := range []int{2, 4, 8, 12} {
		buf := EncodeQuantized(nil, m, bits)
		if len(buf) != EncodedSizeQuantized(4, bits) {
			t.Fatalf("bits=%d: size %d, want %d", bits, len(buf), EncodedSizeQuantized(4, bits))
		}
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || got.Kind != KindGroup || got.SrcPart != 2 || got.Target != 9 {
			t.Fatalf("bits=%d: header mismatch %+v", bits, got)
		}
		// Error bounded by half a quantization step.
		levels := float64(int(1)<<uint(bits)) - 1
		bound := 2.0/levels/2 + 1e-6
		for i := range m.Payload {
			if d := got.Payload[i] - m.Payload[i]; d > bound || d < -bound {
				t.Fatalf("bits=%d: payload[%d] error %v > %v", bits, i, d, bound)
			}
		}
	}
}

func TestQuantizedVolumeSavings(t *testing.T) {
	n := 64
	if q4, fp := EncodedSizeQuantized(n, 4), EncodedSize(n); q4*4 > fp+3*HeaderBytes {
		t.Fatalf("4-bit size %d not ≈1/8 of fp32 %d", q4, fp)
	}
}

func TestQuantizedMixedBatch(t *testing.T) {
	var b Batch
	b.Add(&Message{Kind: KindNode, Target: 1, Payload: []float64{1, 2}})
	b.AddQuantized(&Message{Kind: KindGroup, Target: 2, Payload: []float64{0, 1, 2, 3}}, 4)
	b.Add(&Message{Kind: KindNode, Target: 3, Payload: []float64{5}})
	msgs, err := DecodeAll(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || msgs[0].Target != 1 || msgs[1].Target != 2 || msgs[2].Target != 3 {
		t.Fatalf("mixed batch decode wrong: %+v", msgs)
	}
	if msgs[1].Payload[3] < 2.9 || msgs[1].Payload[3] > 3.1 {
		t.Fatalf("quantized value in mixed batch: %v", msgs[1].Payload)
	}
}

func TestQuantizedConstantPayload(t *testing.T) {
	m := &Message{Kind: KindNode, Payload: []float64{7, 7, 7}}
	got, _, err := Decode(EncodeQuantized(nil, m, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got.Payload {
		if v != 7 {
			t.Fatalf("constant payload changed: %v", got.Payload)
		}
	}
}

func TestQuantizedBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeQuantized(nil, &Message{Kind: KindNode}, 17)
}

// Property: DecodeAll never panics on arbitrary corrupted buffers — it must
// return an error or a valid message list.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Start from a valid batch, then corrupt random bytes.
		var b Batch
		for k := 0; k < 1+rng.Intn(5); k++ {
			payload := make([]float64, rng.Intn(10))
			for i := range payload {
				payload[i] = rng.NormFloat64()
			}
			if rng.Intn(2) == 0 {
				b.Add(&Message{Kind: KindNode, Target: int32(rng.Intn(100)), Payload: payload})
			} else {
				b.AddQuantized(&Message{Kind: KindGroup, Target: int32(rng.Intn(100)), Payload: payload}, 1+rng.Intn(16))
			}
		}
		buf := append([]byte(nil), b.Bytes()...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			if len(buf) == 0 {
				break
			}
			buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		}
		// Also try random truncation.
		if len(buf) > 0 && rng.Intn(2) == 0 {
			buf = buf[:rng.Intn(len(buf))]
		}
		defer func() {
			if recover() != nil {
				t.Fatal("DecodeAll panicked on corrupt input")
			}
		}()
		msgs, err := DecodeAll(buf)
		// Either an error, or every decoded message is structurally sane.
		if err == nil {
			for _, m := range msgs {
				if m.Kind != KindNode && m.Kind != KindGroup {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeHostileLengths feeds headers whose length/bit-width fields are
// attacker-controlled: Decode must validate them against the remaining
// buffer before allocating anything, and must reject bit widths the encoder
// can never produce — errors, never panics or giant allocations.
func TestDecodeHostileLengths(t *testing.T) {
	hdr := func(kind Kind, bits byte, n uint32) []byte {
		b := make([]byte, HeaderBytes)
		b[0] = byte(kind)
		b[1] = bits
		b[12] = byte(n)
		b[13] = byte(n >> 8)
		b[14] = byte(n >> 16)
		b[15] = byte(n >> 24)
		return b
	}

	// Huge fp32 length with an empty body: the int64 need-check must reject
	// it without calling make([]float64, 4294967295).
	if _, _, err := Decode(hdr(KindNode, 0, math.MaxUint32)); err == nil {
		t.Fatal("huge fp32 length accepted")
	}
	// Same for the quantized path.
	if _, _, err := Decode(hdr(KindGroup, 8, math.MaxUint32)); err == nil {
		t.Fatal("huge quantized length accepted")
	}
	// Bit widths outside the encoder's 1..16 range are rejected up front —
	// 255-bit "payloads" used to walk the bit-unpacker off the buffer.
	for _, bits := range []byte{17, 32, 64, 200, 255} {
		b := append(hdr(KindNode, bits, 1), make([]byte, 64)...)
		_, _, err := Decode(b)
		if err == nil {
			t.Fatalf("bits=%d accepted", bits)
		}
	}
	// Quantized body one byte short of its declared size.
	msg := &Message{Kind: KindGroup, Target: 7, Payload: []float64{1, 2, 3, 4, 5}}
	qbuf := EncodeQuantized(nil, msg, 3)
	if _, _, err := Decode(qbuf[:len(qbuf)-1]); err == nil {
		t.Fatal("truncated quantized payload accepted")
	}
	// Every in-range width on a valid buffer still decodes.
	for bits := 1; bits <= 16; bits++ {
		buf := EncodeQuantized(nil, msg, bits)
		m, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if len(rest) != 0 || len(m.Payload) != 5 {
			t.Fatalf("bits=%d: bad decode shape", bits)
		}
	}
}

// TestDecodeHostileAdaptive extends TestDecodeHostileLengths to the adaptive
// format's extra attack surface — the flags byte and the width metadata byte
// — and requires the streaming Decoder to reject each corruption with the
// exact same error as Decode.
func TestDecodeHostileAdaptive(t *testing.T) {
	pay := []float64{1, 2, 3, 4, 5}
	msg := &Message{Kind: KindNode, Target: 3, Payload: pay}
	base := EncodeAdaptive(nil, msg, 6)

	check := func(name string, buf []byte, wantSub string) {
		t.Helper()
		_, _, err := Decode(buf)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: Decode err = %v, want substring %q", name, err, wantSub)
		}
		dec := NewDecoder(buf)
		if _, serr := dec.Next(); serr == nil || serr.Error() != err.Error() {
			t.Fatalf("%s: streaming error %v disagrees with Decode error %v", name, serr, err)
		}
	}

	// Unknown flag bits are rejected whether or not the adaptive bit rides
	// along — forward compatibility stays an explicit decision.
	for _, flags := range []byte{0x02, 0x03, 0x80, 0xfe} {
		buf := append([]byte(nil), base...)
		buf[2] = flags
		check(fmt.Sprintf("flags %#x", flags), buf, "unknown flags")
	}
	// Width metadata byte disagreeing with the header bits field.
	buf := append([]byte(nil), base...)
	buf[HeaderBytes+8] = 7
	check("width mismatch", buf, "disagrees with header bits")
	// The adaptive flag promises quantization metadata an fp32 payload
	// doesn't carry.
	fbuf := Encode(nil, msg)
	fbuf[2] = FlagAdaptive
	check("adaptive on fp32", fbuf, "adaptive flag on fp32")
	// One byte short: the width metadata byte counts toward the declared
	// size, so truncating it must fail the length check, not read past it.
	check("truncated", base[:len(base)-1], "truncated quantized")

	// Every in-range adaptive width still decodes, sizes per the adaptive
	// accounting (one byte over fixed-width), and reconstructs exactly the
	// values its fixed-width twin does — the equivalence-matrix tests lean on
	// adaptive and fixed encodings agreeing at equal bits.
	for bits := 1; bits <= 16; bits++ {
		abuf := EncodeAdaptive(nil, msg, bits)
		if len(abuf) != EncodedSizeAdaptive(len(pay), bits) {
			t.Fatalf("bits=%d: adaptive size %d, want %d", bits, len(abuf), EncodedSizeAdaptive(len(pay), bits))
		}
		if len(abuf) != EncodedSizeQuantized(len(pay), bits)+1 {
			t.Fatalf("bits=%d: adaptive size %d not fixed+1", bits, len(abuf))
		}
		am, rest, err := Decode(abuf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("bits=%d: adaptive decode err=%v rest=%d", bits, err, len(rest))
		}
		qm, _, err := Decode(EncodeQuantized(nil, msg, bits))
		if err != nil {
			t.Fatal(err)
		}
		for i := range pay {
			if am.Payload[i] != qm.Payload[i] {
				t.Fatalf("bits=%d: adaptive payload[%d]=%v, fixed=%v", bits, i, am.Payload[i], qm.Payload[i])
			}
		}
	}
}

// TestDecodeHeaderFieldSweep brute-forces every value of the two untrusted
// single-byte header fields (kind, bits) over a small valid body: Decode
// must classify each as ok or error without panicking.
func TestDecodeHeaderFieldSweep(t *testing.T) {
	base := EncodeQuantized(nil, &Message{Kind: KindNode, Target: 1, Payload: []float64{1, 2}}, 4)
	for kind := 0; kind < 256; kind++ {
		for bits := 0; bits < 256; bits++ {
			buf := append([]byte(nil), base...)
			buf[0] = byte(kind)
			buf[1] = byte(bits)
			func() {
				defer func() {
					if recover() != nil {
						t.Fatalf("Decode panicked at kind=%d bits=%d", kind, bits)
					}
				}()
				Decode(buf)
			}()
		}
	}
}
