package worker

import (
	"testing"

	"scgnn/internal/core"
	"scgnn/internal/datasets"
	"scgnn/internal/dist"
	"scgnn/internal/partition"
	"scgnn/internal/tensor"
)

// roundBenchEnv memoizes one scale preset's dataset, partition, and a
// semantic cluster across the round benchmarks: the 100k preset costs
// seconds to generate and plan, and every kernel/reference sub-benchmark
// wants the identical instance anyway so the before/after rows differ only
// in the code path under test.
type roundBenchEnv struct {
	d       *datasets.Dataset
	part    []int
	cluster *Cluster
	h       *tensor.Matrix
	out     *tensor.Matrix
}

var roundBenchEnvs = map[string]*roundBenchEnv{}

// roundBenchNParts matches the scale study's acceptance configuration
// (exp.ScaleBench default).
const roundBenchNParts = 8

func roundBench(b *testing.B, preset string) *roundBenchEnv {
	b.Helper()
	if env, ok := roundBenchEnvs[preset]; ok {
		return env
	}
	d, err := datasets.ByName(preset, 1)
	if err != nil {
		b.Fatal(err)
	}
	part := partition.Partition(d.Graph, roundBenchNParts, partition.EdgeCut, partition.Config{Seed: 1})
	cfg := core.PlanConfig{Grouping: core.GroupingConfig{K: 8, MaxPivots: 8, Seed: 1}}
	env := &roundBenchEnv{
		d:       d,
		part:    part,
		cluster: NewClusterFromConfig(d.Graph, part, roundBenchNParts, dist.Semantic(cfg)),
		h:       d.Features,
		out:     tensor.New(d.NumNodes(), d.FeatureDim()),
	}
	roundBenchEnvs[preset] = env
	return env
}

// BenchmarkLocalPhase measures the within-partition aggregation — the
// dominant slice of a round's profile — for every worker, on the compiled
// gather plans (kernel) and the retained pre-kernel loop (reference). The
// reference rows keep the before/after comparison inside a single bench
// run instead of across commits.
func BenchmarkLocalPhase(b *testing.B) {
	for _, preset := range []string{"reddit-sim-10k", "reddit-sim-100k"} {
		for _, mode := range []string{"kernel", "reference"} {
			b.Run(preset+"/"+mode, func(b *testing.B) {
				env := roundBench(b, preset)
				c := env.cluster
				c.useReference = mode == "reference"
				defer func() { c.useReference = false }()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for me := 0; me < roundBenchNParts; me++ {
						c.localPhase(me, env.h, env.out)
					}
				}
			})
		}
	}
}

// BenchmarkRoundEndToEnd measures a full semantic aggregate round —
// local aggregation, encode, wire, decode — in the allocation-free
// AggregateInto steady state, kernel vs reference paths.
func BenchmarkRoundEndToEnd(b *testing.B) {
	for _, preset := range []string{"reddit-sim-10k", "reddit-sim-100k"} {
		for _, mode := range []string{"kernel", "reference"} {
			b.Run(preset+"/"+mode, func(b *testing.B) {
				env := roundBench(b, preset)
				c := env.cluster
				c.useReference = mode == "reference"
				defer func() { c.useReference = false }()
				c.StartEpoch(0)
				if err := c.AggregateInto(env.out, env.h, false); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.AggregateInto(env.out, env.h, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
