package worker

// Precompiled gather plans for the round hot path.
//
// The per-round phases used to re-traverse structural state every
// round: localPhase walked every owned node's full neighbor list
// testing part[v]==me per arc and paying one tensor.AXPY call per kept
// neighbor; encodeSemantic re-walked each group's member list; group
// delivery re-walked DstNodes. All of that structure is fixed between
// plan changes, so the cluster now compiles it once — at NewCluster,
// plan install, and Repartition (dirty state only) — into flat int32
// row lists with the coefficient products baked in, and the round
// phases run fused tensor.GatherAXPY / tensor.ScatterAXPY kernels over
// them.
//
// Invalidation contract (DESIGN.md §11): compiled state is a pure
// function of (graph, part, plans/crossOut, coeff).
//   - pairKernels[idx] ← plans[idx]: recompiled by installPlan, i.e. at
//     construction and for every dirty pair of a Repartition.
//   - local[p] ← (part, own[p], plans/crossOut touching p): recompiled
//     at construction and, on Repartition, for the partitions a moved
//     node left or joined plus both endpoints of every dirty pair
//     (dirtyLocalParts below proves that set is sufficient).
// Delay replay/eval bypass need no invalidation hooks of their own:
// they reuse the same compiled phases, and the delay slots' separate
// filled-mark invalidation already handles staleness of cached values.

import (
	"scgnn/internal/core"
)

// pairKernels is one ordered pair's compiled encode/deliver plans for
// both directions (F = forward groups, B = reversed groups). Zero value
// means "no plan" (vanilla mode or no cross edges).
type pairKernels struct {
	encF, encB *core.EncodePlan
	delF, delB *core.DeliverPlan
}

// localPlan is one worker's compiled local-aggregation CSR. rows holds
// the worker's owned nodes in boundary-first order: rows[:nBoundary]
// are the nodes referenced by any outgoing transfer of this worker
// (ascending), rows[nBoundary:] the interior remainder (ascending).
// Row i's terms span nbr[off[i]:off[i+1]]: the self-loop first
// (weight coeff[u]²), then the same-partition neighbors in adjacency
// order (weight coeff[u]·coeff[v]) — exactly the term order of the
// pre-kernel localPhase, so outputs are bit-identical.
type localPlan struct {
	rows      []int32
	nBoundary int
	off       []int32
	nbr       []int32
	w         []float64
}

// compilePairKernels refreshes pair idx's compiled encode/deliver plans
// from the installed plan. installPlan calls it, so the kernels can
// never go stale against the plan they were compiled from.
func (c *Cluster) compilePairKernels(idx int) {
	p := c.plans[idx]
	if p == nil {
		c.kernels[idx] = pairKernels{}
		return
	}
	rev := c.revGroups[idx]
	c.kernels[idx] = pairKernels{
		encF: core.CompileEncode(p.Groups, p.O2O, false, c.coeff),
		encB: core.CompileEncode(rev, p.O2O, true, c.coeff),
		delF: core.CompileDeliver(p.Groups, c.coeff),
		delB: core.CompileDeliver(rev, c.coeff),
	}
}

// markBoundary sets mark[u] for every node worker p reads when encoding
// an outgoing batch in either direction: forward it encodes pair
// (p→t)'s group members and O2O sources; backward it encodes pair
// (t→p)'s reversed-group members (= that plan's DstNodes) and O2O
// sinks. Vanilla mode reads the cross-arc endpoints it owns. Marked
// nodes are always owned by p, which is what lets compileLocal clear
// the scratch by walking own[p].
func (c *Cluster) markBoundary(p int, mark []bool) {
	for t := 0; t < c.nparts; t++ {
		if t == p {
			continue
		}
		if c.semantic {
			if plan := c.plans[p*c.nparts+t]; plan != nil {
				for _, grp := range plan.Groups {
					for _, u := range grp.SrcNodes {
						mark[u] = true
					}
				}
				for _, o := range plan.O2O {
					mark[o.Src] = true
				}
			}
			if plan := c.plans[t*c.nparts+p]; plan != nil {
				for _, grp := range plan.Groups {
					for _, v := range grp.DstNodes {
						mark[v] = true
					}
				}
				for _, o := range plan.O2O {
					mark[o.Dst] = true
				}
			}
		} else {
			for _, e := range c.crossOut[p*c.nparts+t] {
				mark[e.U] = true
			}
			for _, e := range c.crossOut[t*c.nparts+p] {
				mark[e.V] = true
			}
		}
	}
}

// compileLocal builds worker p's local-aggregation CSR from the current
// partition and plans. Must run after ownership, crossOut, and (when
// semantic) the pair plans reflect the partition it compiles for.
func (c *Cluster) compileLocal(p int) *localPlan {
	if len(c.boundScratch) != c.g.NumNodes() {
		c.boundScratch = make([]bool, c.g.NumNodes())
	}
	mark := c.boundScratch
	c.markBoundary(p, mark)
	own := c.own[p]
	lp := &localPlan{
		rows: make([]int32, 0, len(own)),
		off:  make([]int32, 1, len(own)+1),
	}
	for _, u := range own {
		if mark[u] {
			lp.rows = append(lp.rows, u)
		}
	}
	lp.nBoundary = len(lp.rows)
	for _, u := range own {
		if !mark[u] {
			lp.rows = append(lp.rows, u)
		}
	}
	for _, u := range own {
		mark[u] = false
	}
	// Exact-size the arc arrays (counting pass) so a 1M-node plan holds
	// no growth slack.
	arcs := len(own)
	for _, u := range own {
		for _, v := range c.g.Neighbors(u) {
			if c.part[v] == p {
				arcs++
			}
		}
	}
	lp.nbr = make([]int32, 0, arcs)
	lp.w = make([]float64, 0, arcs)
	for _, u := range lp.rows {
		fu := c.coeff[u]
		lp.nbr = append(lp.nbr, u)
		lp.w = append(lp.w, fu*fu)
		for _, v := range c.g.Neighbors(u) {
			if c.part[v] == p {
				lp.nbr = append(lp.nbr, v)
				lp.w = append(lp.w, fu*c.coeff[v])
			}
		}
		lp.off = append(lp.off, int32(len(lp.nbr)))
	}
	return lp
}

// dirtyLocalParts returns the set (as a bitmap over partitions) whose
// local plans a repartition old→next invalidates. A row u's compiled
// terms change only if (a) u changed owners — both its old and new
// partition's row sets change — or (b) a neighbor v moved in or out of
// u's partition, in which case part[u] ∈ {old[v], next[v]}; either way
// the affected partition is an old or new home of a moved node. The
// boundary/interior split additionally depends on the plans/cross arcs
// of pairs touching p, which change exactly for dirty pairs — so both
// endpoints of every dirty pair join the set. No in-neighbor walk is
// needed.
func (c *Cluster) dirtyLocalParts(next []int, dirtyPairs []int) []bool {
	dp := make([]bool, c.nparts)
	for u, np := range next {
		if op := c.part[u]; op != np {
			dp[op] = true
			dp[np] = true
		}
	}
	for _, idx := range dirtyPairs {
		dp[idx/c.nparts] = true
		dp[idx%c.nparts] = true
	}
	return dp
}
