package worker

import (
	"sync"
	"testing"

	"scgnn/internal/core"
	"scgnn/internal/dist"
	"scgnn/internal/tensor"
)

// TestKernelReferenceLockstep pins the compiled hot path bit-identical to
// the retained reference implementations: for every Fig. 12(b) method
// combination, a kernelized cluster and a useReference cluster run two
// epochs, Repartition onto the same perturbed partition, and run two more
// — outputs must match byte-for-byte (Equal with tolerance 0) and traffic
// exactly, throughout. nparts=2 keeps the cross-cluster comparison
// deterministic: each worker decodes exactly one inbound buffer, so there
// is no arrival-order reassociation of the floating-point sums.
func TestKernelReferenceLockstep(t *testing.T) {
	d, part := setup(t, 2)
	const nparts = 2
	next := movedPart(t, d.NumNodes(), part, nparts)
	h := randMat(d.NumNodes(), 5, 91)
	g := randMat(d.NumNodes(), 5, 92)

	for name, cfg := range dist.MethodMatrix(11) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			kern := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer kern.Close()
			ref := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer ref.Close()
			ref.useReference = true

			compare := func(epoch int, stage string) {
				t.Helper()
				kern.ResetTraffic()
				kern.StartEpoch(epoch)
				gotF := kern.Forward(h).Clone()
				gotB := kern.Backward(g).Clone()
				snap := kern.Snapshot()
				ref.ResetTraffic()
				ref.StartEpoch(epoch)
				wantF := ref.Forward(h)
				wantB := ref.Backward(g)
				want := ref.Snapshot()
				if !gotF.Equal(wantF, 0) {
					t.Fatalf("%s epoch %d: kernel forward not byte-identical to reference", stage, epoch)
				}
				if !gotB.Equal(wantB, 0) {
					t.Fatalf("%s epoch %d: kernel backward not byte-identical to reference", stage, epoch)
				}
				if snap != want {
					t.Fatalf("%s epoch %d: traffic %+v vs reference %+v", stage, epoch, snap, want)
				}
			}

			for epoch := 0; epoch < 2; epoch++ {
				compare(epoch, "pre-repartition")
			}
			dKern, err := kern.Repartition(next)
			if err != nil {
				t.Fatal(err)
			}
			dRef, err := ref.Repartition(next)
			if err != nil {
				t.Fatal(err)
			}
			if len(dKern) != len(dRef) {
				t.Fatalf("dirty sets differ: kernel %v vs reference %v", dKern, dRef)
			}
			for i := range dKern {
				if dKern[i] != dRef[i] {
					t.Fatalf("dirty sets differ: kernel %v vs reference %v", dKern, dRef)
				}
			}
			if len(dKern) == 0 {
				t.Fatal("a real perturbation must dirty at least one pair")
			}
			for epoch := 2; epoch < 4; epoch++ {
				compare(epoch, "post-repartition")
			}
		})
	}
}

// TestKernelLocalPhaseBitIdentical compares each worker's compiled local
// aggregation against the reference loop directly — no wire in between,
// so this holds at any nparts, before and after a Repartition.
func TestKernelLocalPhaseBitIdentical(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	h := randMat(d.NumNodes(), 7, 93)

	for _, semantic := range []bool{false, true} {
		cfg := dist.Vanilla()
		if semantic {
			cfg = dist.Semantic(core.PlanConfig{Grouping: core.GroupingConfig{Seed: 7}})
		}
		c := NewClusterFromConfig(d.Graph, part, nparts, cfg)
		defer c.Close()

		check := func(stage string) {
			t.Helper()
			for me := 0; me < nparts; me++ {
				got := tensor.New(d.NumNodes(), h.Cols)
				want := tensor.New(d.NumNodes(), h.Cols)
				c.useReference = false
				c.localPhase(me, h, got)
				c.useReference = true
				c.localPhase(me, h, want)
				c.useReference = false
				if !got.Equal(want, 0) {
					t.Fatalf("semantic=%v %s: worker %d localPhase not byte-identical", semantic, stage, me)
				}
			}
		}
		check("pre-repartition")
		next := movedPart(t, d.NumNodes(), part, nparts)
		if _, err := c.Repartition(next); err != nil {
			t.Fatal(err)
		}
		check("post-repartition")
	}
}

// TestKernelLocalPlanBoundarySplit pins the boundary-first layout of the
// compiled local plans: rows is a permutation of own[p] with the marked
// boundary block first, each block ascending, and the boundary block is
// exactly the set markBoundary reports for the current plans.
func TestKernelLocalPlanBoundarySplit(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	for _, semantic := range []bool{false, true} {
		cfg := dist.Vanilla()
		if semantic {
			cfg = dist.Semantic(core.PlanConfig{Grouping: core.GroupingConfig{Seed: 7}})
		}
		c := NewClusterFromConfig(d.Graph, part, nparts, cfg)
		defer c.Close()
		for p := 0; p < nparts; p++ {
			lp := c.local[p]
			if len(lp.rows) != len(c.own[p]) {
				t.Fatalf("semantic=%v worker %d: %d plan rows, own %d nodes",
					semantic, p, len(lp.rows), len(c.own[p]))
			}
			mark := make([]bool, d.NumNodes())
			c.markBoundary(p, mark)
			nMarked := 0
			for _, u := range c.own[p] {
				if mark[u] {
					nMarked++
				}
			}
			if lp.nBoundary != nMarked {
				t.Fatalf("semantic=%v worker %d: nBoundary %d, marked %d",
					semantic, p, lp.nBoundary, nMarked)
			}
			for i, u := range lp.rows {
				boundary := i < lp.nBoundary
				if mark[u] != boundary {
					t.Fatalf("semantic=%v worker %d: row %d (node %d) in wrong block",
						semantic, p, i, u)
				}
				ascendingFrom := 0
				if !boundary {
					ascendingFrom = lp.nBoundary
				}
				if i > ascendingFrom && lp.rows[i-1] >= u {
					t.Fatalf("semantic=%v worker %d: block not ascending at row %d", semantic, p, i)
				}
			}
		}
	}
}

// TestBoundaryFirstSchedule observes the round phases through phaseHook:
// every worker must complete its boundary rows and launch its send before
// touching the interior, and the interior must complete before receive
// returns — the structural guarantee that communication overlaps interior
// compute (DESIGN.md §11).
func TestBoundaryFirstSchedule(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	c := NewClusterFromConfig(d.Graph, part, nparts, dist.Semantic(core.PlanConfig{Grouping: core.GroupingConfig{Seed: 7}}))
	defer c.Close()

	var mu sync.Mutex
	phases := make([][]string, nparts)
	c.phaseHook = func(worker int, phase string) {
		mu.Lock()
		phases[worker] = append(phases[worker], phase)
		mu.Unlock()
	}

	h := randMat(d.NumNodes(), 5, 94)
	c.StartEpoch(0)
	c.Forward(h)
	c.Backward(h)

	want := []string{"local-boundary", "send", "local-interior", "receive"}
	for w, got := range phases {
		if len(got) != 2*len(want) {
			t.Fatalf("worker %d: %d phase events over 2 rounds, want %d: %v",
				w, len(got), 2*len(want), got)
		}
		for r := 0; r < 2; r++ {
			for i, p := range want {
				if got[r*len(want)+i] != p {
					t.Fatalf("worker %d round %d: phase order %v, want %v per round", w, r, got, want)
				}
			}
		}
	}
}
