package worker

import (
	"errors"
	"fmt"

	"scgnn/internal/dist"
	"scgnn/internal/graph"
	"scgnn/internal/sched"
	"scgnn/internal/tensor"
)

// Peer is one partition's share of the cluster runtime, driven externally by
// a transport instead of the in-process goroutine pool: internal/net runs one
// Peer per OS process and carries the framed batches over sockets. The peer
// holds the complete cluster state — plans, kernels, cross-arc buckets,
// per-pair compression streams — rebuilt deterministically from the same
// (graph, partition, config) every node receives, so all replicas agree on
// every structural decision without ever serializing a plan.
//
// # Shared RNG streams across processes
//
// In-process, the ordered pair (s,t) owns ONE sampler stream, consumed by
// worker s on forward rounds and worker t on backward rounds. Across
// processes each node holds a replica of every pair's stream, but only the
// encoding node consumes coins — so after each exchanging round every peer
// ghost-advances the pairs it did not encode, replaying the structural coin
// loop (unit counts and memo keys derive from plans and cross-edge lists,
// which all replicas share) without touching any payload. Streams therefore
// stay position-identical across all replicas, which is what makes a later
// backward round, checkpoint, or repartition agree bit-for-bit with the
// in-process oracle.
type Peer struct {
	c  *Cluster
	me int
}

// NewPeer builds partition me's driven runtime for the same method
// combination a dist.Config engine or NewClusterFromConfig cluster would
// run. The full cluster state is constructed (every node needs every plan to
// encode, decode, and ghost-advance), but no goroutines are spawned; rounds
// are executed by Round on the caller's goroutine.
func NewPeer(g *graph.Graph, part []int, nparts, me int, cfg dist.Config) (*Peer, error) {
	if me < 0 || me >= nparts {
		return nil, fmt.Errorf("worker: peer id %d out of range [0,%d)", me, nparts)
	}
	if err := graph.ValidatePartition(g.NumNodes(), part, nparts); err != nil {
		return nil, fmt.Errorf("worker: NewPeer: %w", err)
	}
	c := newClusterState(g, part, nparts, cfg.Semantic, cfg.Plan)
	c.applyConfig(cfg)
	// A transport-driven replica never advances its own schedule: the
	// coordinator runs the decision function on merged signals and pushes
	// levels through ApplySchedule before each epoch frame.
	c.schedExternal = true
	return &Peer{c: c, me: me}, nil
}

// ID returns the partition this peer runs.
func (p *Peer) ID() int { return p.me }

// NumParts returns the cluster width.
func (p *Peer) NumParts() int { return p.c.nparts }

// NumNodes returns the graph's node count (the row dimension Round expects).
func (p *Peer) NumNodes() int { return p.c.g.NumNodes() }

// Own returns the ascending node ids this peer owns under the current
// partition. The slice is live cluster state; callers must not mutate it and
// must re-fetch it after Repartition.
func (p *Peer) Own() []int32 { return p.c.own[p.me] }

// StartEpoch marks an epoch boundary (see Cluster.StartEpoch).
func (p *Peer) StartEpoch(epoch int) { p.c.StartEpoch(epoch) }

// StartEvalEpoch prepares a measurement-only pass (see
// Cluster.StartEvalEpoch).
func (p *Peer) StartEvalEpoch(epoch int) { p.c.StartEvalEpoch(epoch) }

// Repartition moves the peer to a new partition of the same graph, with
// Cluster.Repartition's exact incremental contract. Every node applies the
// same vector, computes the same dirty set, and reseeds the same pair
// streams, so the replicas stay in lockstep.
func (p *Peer) Repartition(part []int) ([]int, error) { return p.c.Repartition(part) }

// SchedSignals reports this replica's per-pair scheduler signals (see
// Cluster.SchedSignals); the coordinator merges all replicas' snapshots with
// sched.MergeNodeSignals before deciding.
func (p *Peer) SchedSignals() []sched.Signals { return p.c.SchedSignals() }

// ApplySchedule installs coordinator-decided rung levels (see
// Cluster.ApplySchedule). Must arrive between rounds — the coordinator sends
// it before each epoch frame.
func (p *Peer) ApplySchedule(levels []int) error { return p.c.ApplySchedule(levels) }

// ScheduleLevels returns the current rung levels (nil when scheduling is
// off).
func (p *Peer) ScheduleLevels() []int { return p.c.ScheduleLevels() }

// Round executes one aggregate round for this peer: the boundary-first local
// schedule, one encoded frame handed to send per peer (ascending, skipping
// self), ghost-advance of the pairs other nodes encoded, then nparts-1 recv
// calls whose buffers are stream-decoded into the rows this peer owns.
// h and out are full-size n×d matrices of which only this peer's rows are
// meaningful: h must carry valid rows for every node this peer owns (local
// aggregation and encoding read nothing else), and out receives the
// aggregate on owned rows. Delayed-transmission replay/fresh decisions are
// computed locally from the epoch schedule — deterministic, so every node
// independently agrees on the round shape. A non-nil error (transport or
// decode) poisons the peer: contributions may have been dropped mid-round,
// so every later Round returns the same error until Restore rewinds the
// state.
func (p *Peer) Round(h, out *tensor.Matrix, backward bool, send func(peer int, frame []byte) error, recv func() ([]byte, error)) error {
	c, me := p.c, p.me
	if c.err != nil {
		return c.err
	}
	n := c.g.NumNodes()
	if h.Rows != n {
		return fmt.Errorf("worker: peer %d: matrix rows %d, graph nodes %d", me, h.Rows, n)
	}
	if out.Rows != n || out.Cols != h.Cols {
		return fmt.Errorf("worker: peer %d: out shape (%d,%d), want (%d,%d)", me, out.Rows, out.Cols, n, h.Cols)
	}
	out.Zero()
	round := c.round
	c.ws[me].ensure(h.Cols)

	// Same replay/fresh/target resolution as AggregateInto, applied to the
	// node-local slot store.
	delayOn := c.delayPeriod > 1 && !c.freshEval
	replay := false
	target := out
	if delayOn {
		transmit := c.epoch%c.delayPeriod == 0
		filled := round < len(c.delayFilled) && c.delayFilled[round]
		if !transmit && filled {
			replay = true
			target = c.delaySlots[round]
		} else {
			for len(c.delaySlots) <= round {
				c.delaySlots = append(c.delaySlots, nil)
				c.delayFilled = append(c.delayFilled, false)
			}
			slot := c.delaySlots[round]
			if slot == nil || slot.Rows != out.Rows || slot.Cols != out.Cols {
				slot = tensor.New(out.Rows, out.Cols)
				c.delaySlots[round] = slot
				c.delayFilled[round] = false
			}
			target = slot
		}
	}

	lp := c.local[me]
	if replay {
		// No exchange anywhere this round (all replicas agree), so no coins
		// are consumed and no ghost-advance is needed.
		c.localRows(me, h, out, 0, len(lp.rows))
		for _, u := range c.own[me] {
			tensor.AXPY(1, target.Row(int(u)), out.Row(int(u)))
		}
		c.round++
		return nil
	}

	c.localRows(me, h, out, 0, lp.nBoundary)
	for peer := 0; peer < c.nparts; peer++ {
		if peer == me {
			continue
		}
		buf := c.encodePeer(me, peer, h, backward)
		if err := send(peer, buf); err != nil {
			c.err = fmt.Errorf("worker: peer %d: send to %d: %w", me, peer, err)
			return c.err
		}
	}
	c.ghostAdvance(me, backward)
	if target != out {
		for _, u := range c.own[me] {
			clear(target.Row(int(u)))
		}
	}
	c.localRows(me, h, out, lp.nBoundary, len(lp.rows))

	var firstErr error
	for k := 0; k < c.nparts-1; k++ {
		buf, err := recv()
		if err != nil {
			// Transport failure: the remaining batches are not coming; abort
			// rather than drain.
			if firstErr == nil {
				firstErr = fmt.Errorf("worker: peer %d: recv: %w", me, err)
			}
			break
		}
		if firstErr != nil {
			continue // keep draining so the transport stays balanced
		}
		if err := c.decodeBatch(me, backward, target, buf); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		c.err = firstErr
		return firstErr
	}
	if target != out {
		for _, u := range c.own[me] {
			tensor.AXPY(1, target.Row(int(u)), out.Row(int(u)))
		}
		c.delayFilled[round] = true
	}
	c.round++
	return nil
}

// ghostAdvance replays the structural coin consumption of every pair some
// OTHER node encoded this round, so this replica's streams end the round at
// the same position as the consumer's. Pair (s,t) is consumed by node s on
// forward rounds and node t on backward rounds.
func (c *Cluster) ghostAdvance(me int, backward bool) {
	if c.pairs == nil {
		return
	}
	for s := 0; s < c.nparts; s++ {
		for t := 0; t < c.nparts; t++ {
			if s == t {
				continue
			}
			consumer := s
			if backward {
				consumer = t
			}
			if consumer == me {
				continue
			}
			c.ghostAdvancePair(s*c.nparts+t, backward)
		}
	}
}

// ghostAdvancePair replays one pair's coin loop without touching payloads:
// the same unit order (groups by index, then O2O; or cross edges in bucket
// order) and the same memo keys as the encoders, so per-edge samplers
// consume one coin per unit and node samplers consume exactly the coins a
// memo miss would.
func (c *Cluster) ghostAdvancePair(idx int, backward bool) {
	ps := c.pairAt(idx)
	if ps == nil {
		return
	}
	sampler, nodeSampler := ps.sampler, ps.nodeSampler
	if sampler == nil && nodeSampler == nil {
		return
	}
	if nodeSampler != nil {
		nodeSampler.StartRound()
	}
	if c.semantic {
		plan := c.plans[idx]
		if plan == nil {
			return
		}
		for gi := range plan.Groups {
			if sampler != nil {
				sampler.Keep()
			} else {
				nodeSampler.Keep(groupCoinKey(gi))
			}
		}
		for _, o := range plan.O2O {
			sender := o.Src
			if backward {
				sender = o.Dst
			}
			if sampler != nil {
				sampler.Keep()
			} else {
				nodeSampler.Keep(sender)
			}
		}
		return
	}
	for _, e := range c.crossOut[idx] {
		sender := e.U
		if backward {
			sender = e.V
		}
		if sampler != nil {
			sampler.Keep()
		} else {
			nodeSampler.Keep(sender)
		}
	}
}

// TrafficDelta exports and clears the peer's per-destination traffic counted
// since the last call: bytes[d], msgs[d] for every destination partition d.
// The coordinator merges the rows of all nodes into its fabric, reproducing
// the in-process cluster's exact per-link accounting.
func (p *Peer) TrafficDelta() (bytes, msgs []int64) {
	return p.c.counters[p.me].DrainRow(p.me)
}

// PairStreamState is one ordered pair's serializable compression-stream
// position. Sampler streams are stored as draw counts (restore re-derives
// the seed and fast-forwards); the node sampler's xorshift state word is
// stored directly; error-feedback residuals are stored in full.
type PairStreamState struct {
	SamplerDraws int64
	NodeState    uint64
	EF           map[int64][]float64
	// Scheduler-visible cumulative counters (zero when the pair runs no
	// adaptive quantizer / error feedback): restoring them keeps a resumed
	// run's schedule decisions bit-equal to an undisturbed one.
	AdaptiveBitsSum int64
	AdaptiveCalls   int64
	EFCorrected     int64
}

// PeerState is the peer's checkpointable runtime state: every pair's stream
// position plus the delayed-transmission cache restricted to the rows this
// peer owns. Model parameters and the training-loop bookkeeping live in the
// coordinator's checkpoint; graph, partition, plans, and kernels are
// rebuilt deterministically from the Setup inputs and are never serialized.
// Valid at epoch boundaries (StartEpoch resets the intra-epoch round
// counter, so no mid-epoch cursor needs saving).
type PeerState struct {
	NParts int
	// Pairs has nparts² entries (nil when no stateful method is configured).
	Pairs []PairStreamState
	// Levels is the variable-rate schedule's per-pair rung vector (nil when
	// scheduling is off). Restore applies it before reseeding pair streams,
	// so each stream is rebuilt under the rung it was captured on.
	Levels []int32
	// DelayFilled[r] marks aggregate-round slot r as holding a usable cached
	// delta; DelayRows[r] is then the flattened own-row data
	// (len(own)×DelayCols[r]), in ascending owned-node order. Columns are
	// per-slot: a multi-layer model aggregates at a different width every
	// round. Unfilled slots carry no rows.
	DelayFilled []bool
	DelayRows   [][]float64
	DelayCols   []int
}

// State captures the peer's stream and delay-cache state at an epoch
// boundary, deep-copied so later rounds leave the checkpoint untouched.
func (p *Peer) State() *PeerState {
	c := p.c
	st := &PeerState{NParts: c.nparts}
	if c.pairs != nil {
		st.Pairs = make([]PairStreamState, len(c.pairs))
		for i := range c.pairs {
			ps := &c.pairs[i]
			if ps.sampler != nil {
				st.Pairs[i].SamplerDraws = ps.sampler.Draws()
			}
			if ps.nodeSampler != nil {
				st.Pairs[i].NodeState = ps.nodeSampler.State()
			}
			if ps.ef != nil {
				st.Pairs[i].EF = ps.ef.Snapshot()
				st.Pairs[i].EFCorrected = ps.ef.Corrected
			}
			if ps.adaptive != nil {
				st.Pairs[i].AdaptiveBitsSum = ps.adaptive.BitsSum
				st.Pairs[i].AdaptiveCalls = ps.adaptive.Calls
			}
		}
	}
	if c.schedule != nil {
		lv := c.schedule.Levels()
		st.Levels = make([]int32, len(lv))
		for i, v := range lv {
			st.Levels[i] = int32(v)
		}
	}
	if len(c.delayFilled) > 0 {
		st.DelayFilled = append([]bool(nil), c.delayFilled...)
		st.DelayRows = make([][]float64, len(c.delaySlots))
		st.DelayCols = make([]int, len(c.delaySlots))
		for r, slot := range c.delaySlots {
			if !c.delayFilled[r] || slot == nil {
				continue
			}
			st.DelayCols[r] = slot.Cols
			rows := make([]float64, 0, len(c.own[p.me])*slot.Cols)
			for _, u := range c.own[p.me] {
				rows = append(rows, slot.Row(int(u))...)
			}
			st.DelayRows[r] = rows
		}
	}
	return st
}

// Restore rewinds the peer to a captured state: dirty streams are re-derived
// from the configured seed and fast-forwarded to the saved position, the
// delay cache is rebuilt for the rows this peer owns, and any poisoning is
// cleared. The peer must have been built with the same (graph, partition,
// config) the state was captured under; the coordinator guarantees this by
// re-running Setup from its own checkpoint before restoring nodes.
func (p *Peer) Restore(st *PeerState) error {
	c := p.c
	if st == nil {
		return errors.New("worker: nil peer state")
	}
	if st.NParts != c.nparts {
		return fmt.Errorf("worker: peer state for %d parts, cluster has %d", st.NParts, c.nparts)
	}
	if (st.Pairs == nil) != (c.pairs == nil) || len(st.Pairs) != len(c.pairs) {
		return fmt.Errorf("worker: peer state has %d pair streams, cluster has %d (method config mismatch)",
			len(st.Pairs), len(c.pairs))
	}
	if c.schedule != nil {
		// The rung vector must land before the reseed loop below: reseedPair
		// derives each pair's sampler/quantizer/EF gates from its rung.
		if len(st.Levels) != c.nparts*c.nparts {
			return fmt.Errorf("worker: peer state has %d schedule levels, cluster has %d pairs (sched config mismatch)",
				len(st.Levels), c.nparts*c.nparts)
		}
		lv := make([]int, len(st.Levels))
		for i, v := range st.Levels {
			lv[i] = int(v)
		}
		if _, err := c.schedule.SetLevels(lv); err != nil {
			return fmt.Errorf("worker: peer state: %w", err)
		}
	} else if st.Levels != nil {
		return errors.New("worker: peer state carries schedule levels but scheduling is off (sched config mismatch)")
	}
	for i := range c.pairs {
		c.reseedPair(i)
		ps := &c.pairs[i]
		if ps.sampler != nil {
			ps.sampler.Skip(st.Pairs[i].SamplerDraws)
		}
		if ps.nodeSampler != nil {
			ps.nodeSampler.SetState(st.Pairs[i].NodeState)
		}
		if ps.ef != nil {
			ps.ef.Restore(st.Pairs[i].EF)
			ps.ef.Corrected = st.Pairs[i].EFCorrected
		}
		if ps.adaptive != nil {
			ps.adaptive.BitsSum = st.Pairs[i].AdaptiveBitsSum
			ps.adaptive.Calls = st.Pairs[i].AdaptiveCalls
		}
	}
	c.delayFilled = append([]bool(nil), st.DelayFilled...)
	c.delaySlots = make([]*tensor.Matrix, len(st.DelayFilled))
	for r := range st.DelayFilled {
		if !st.DelayFilled[r] {
			continue
		}
		rows, cols := 0, 0
		if r < len(st.DelayRows) {
			rows = len(st.DelayRows[r])
		}
		if r < len(st.DelayCols) {
			cols = st.DelayCols[r]
		}
		if cols < 1 || rows != len(c.own[p.me])*cols {
			return fmt.Errorf("worker: peer state slot %d has %d row values, want %d×%d",
				r, rows, len(c.own[p.me]), cols)
		}
		slot := tensor.New(c.g.NumNodes(), cols)
		for k, u := range c.own[p.me] {
			copy(slot.Row(int(u)), st.DelayRows[r][k*cols:(k+1)*cols])
		}
		c.delaySlots[r] = slot
	}
	c.err = nil
	return nil
}
