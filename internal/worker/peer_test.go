package worker

import (
	"sync"
	"testing"

	"scgnn/internal/dist"
	"scgnn/internal/partition"
	"scgnn/internal/simnet"
	"scgnn/internal/tensor"
)

// peerMesh drives nparts driven Peers in lockstep rounds over buffered
// channels — the in-process stand-in for the socket transport, with the same
// deterministic discipline internal/net uses: frames are received in
// ascending sender order, so decode order (and therefore every fp64 row sum)
// is reproducible run over run.
type peerMesh struct {
	peers []*Peer
	// h and out are each peer's full-size retained matrices; h carries only
	// the rows that peer owns (the coordinator's scatter).
	h, out []*tensor.Matrix
	chans  [][]chan []byte // chans[s][t]: frames from s to t
	fabric *simnet.Fabric
	shard  *simnet.ShardCounter
}

func newPeerMesh(t *testing.T, peers []*Peer, n, dim int) *peerMesh {
	t.Helper()
	np := len(peers)
	m := &peerMesh{
		peers:  peers,
		fabric: simnet.NewFabric(np),
		shard:  simnet.NewShardCounter(np),
	}
	m.chans = make([][]chan []byte, np)
	for s := 0; s < np; s++ {
		m.chans[s] = make([]chan []byte, np)
		for d := 0; d < np; d++ {
			m.chans[s][d] = make(chan []byte, np)
		}
	}
	for range peers {
		m.h = append(m.h, tensor.New(n, dim))
		m.out = append(m.out, tensor.New(n, dim))
	}
	return m
}

// scatter copies each peer's owned rows of h into its local h matrix (the
// coordinator's per-node scatter; other rows stay stale on purpose — peers
// must never read them).
func (m *peerMesh) scatter(h *tensor.Matrix) {
	for p, peer := range m.peers {
		for _, u := range peer.Own() {
			copy(m.h[p].Row(int(u)), h.Row(int(u)))
		}
	}
}

// round runs one lockstep aggregate round on every peer and folds each
// peer's traffic delta into the mesh fabric.
func (m *peerMesh) round(t *testing.T, backward bool) error {
	t.Helper()
	np := len(m.peers)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			next := 0
			recv := func() ([]byte, error) {
				if next == p {
					next++
				}
				buf := <-m.chans[next][p]
				next++
				return buf, nil
			}
			send := func(peer int, frame []byte) error {
				m.chans[p][peer] <- append([]byte(nil), frame...)
				return nil
			}
			errs[p] = m.peers[p].Round(m.h[p], m.out[p], backward, send, recv)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for p, peer := range m.peers {
		bytes, msgs := peer.TrafficDelta()
		for d := 0; d < np; d++ {
			if bytes[d] != 0 || msgs[d] != 0 {
				m.shard.Add(p, d, bytes[d], msgs[d])
			}
		}
	}
	m.fabric.Drain(m.shard)
	return nil
}

// gather assembles the global aggregate from each peer's owned out rows.
func (m *peerMesh) gather(dst *tensor.Matrix) {
	for p, peer := range m.peers {
		for _, u := range peer.Own() {
			copy(dst.Row(int(u)), m.out[p].Row(int(u)))
		}
	}
}

// TestPeerClusterEquivalenceMatrix locks the driven multi-replica Peer
// runtime to the in-process cluster across the full 13-combo method matrix,
// including a mid-training Repartition: aggregates within fp64 reassociation
// tolerance (the wire bytes are identical; only decode arrival order
// differs), per-epoch traffic snapshots exactly — which transitively pins
// the ghost-advance scheme, since one skipped or extra coin on any replica
// desynchronizes drop decisions and the byte counts with them.
func TestPeerClusterEquivalenceMatrix(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	part2 := partition.Partition(d.Graph, nparts, partition.NodeCut, partition.Config{Seed: 5})
	h := randMat(d.NumNodes(), 5, 77)
	g := randMat(d.NumNodes(), 5, 78)
	want := tensor.New(d.NumNodes(), 5)

	for name, cfg := range dist.MethodMatrix(9) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cl := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer cl.Close()
			peers := make([]*Peer, nparts)
			for p := 0; p < nparts; p++ {
				peer, err := NewPeer(d.Graph, part, nparts, p, cfg)
				if err != nil {
					t.Fatalf("NewPeer(%d): %v", p, err)
				}
				peers[p] = peer
			}
			mesh := newPeerMesh(t, peers, d.NumNodes(), 5)

			for epoch := 0; epoch < 5; epoch++ {
				if epoch == 3 {
					// Mid-training repartition, applied identically on every
					// replica; the incremental dirty sets must agree.
					wantDirty, err := cl.Repartition(part2)
					if err != nil {
						t.Fatalf("cluster Repartition: %v", err)
					}
					for p, peer := range peers {
						gotDirty, err := peer.Repartition(part2)
						if err != nil {
							t.Fatalf("peer %d Repartition: %v", p, err)
						}
						if len(gotDirty) != len(wantDirty) {
							t.Fatalf("peer %d dirty %v, cluster %v", p, gotDirty, wantDirty)
						}
						for i := range gotDirty {
							if gotDirty[i] != wantDirty[i] {
								t.Fatalf("peer %d dirty %v, cluster %v", p, gotDirty, wantDirty)
							}
						}
					}
				}
				cl.ResetTraffic()
				cl.StartEpoch(epoch)
				mesh.fabric.Reset()
				for _, peer := range peers {
					peer.StartEpoch(epoch)
				}
				for _, bwd := range []bool{false, true} {
					in := h
					if bwd {
						in = g
					}
					var wantOut *tensor.Matrix
					if bwd {
						wantOut = cl.Backward(in)
					} else {
						wantOut = cl.Forward(in)
					}
					mesh.scatter(in)
					if err := mesh.round(t, bwd); err != nil {
						t.Fatalf("epoch %d bwd=%v: %v", epoch, bwd, err)
					}
					mesh.gather(want)
					if !want.Equal(wantOut, 1e-9*(1+wantOut.MaxAbs())) {
						t.Fatalf("epoch %d bwd=%v: peer aggregate diverged from cluster", epoch, bwd)
					}
				}
				if cs, ps := cl.Snapshot(), mesh.fabric.Capture(); cs != ps {
					t.Fatalf("epoch %d: peer traffic %+v vs cluster %+v", epoch, ps, cs)
				}
			}
		})
	}
}

// TestPeerStateRestoreRoundtrip pins the checkpoint contract on the
// stateful combos: capture every peer's State at an epoch boundary, keep
// running the originals, then rebuild fresh peers, Restore, and replay —
// the resumed mesh must reproduce the uninterrupted aggregates bit for bit
// (the mesh's ascending-sender decode order makes the rounds fully
// deterministic, so exact equality is required, not just tolerance).
func TestPeerStateRestoreRoundtrip(t *testing.T) {
	d, part := setup(t, 3)
	const nparts, dim = 3, 5
	h := randMat(d.NumNodes(), dim, 81)
	g := randMat(d.NumNodes(), dim, 82)

	for name, cfg := range map[string]dist.Config{
		"sampling":  {SampleRate: 0.5, Seed: 9},
		"nsampling": {SampleRate: 0.5, SampleNodes: true, Seed: 9},
		"quant4+ef": {QuantBits: 4, ErrorFeedback: true, Seed: 9},
		"delay3":    {DelayPeriod: 3, Seed: 9},
		"semantic":  {Semantic: true, SampleRate: 0.5, Seed: 9},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			build := func() []*Peer {
				peers := make([]*Peer, nparts)
				for p := 0; p < nparts; p++ {
					peer, err := NewPeer(d.Graph, part, nparts, p, cfg)
					if err != nil {
						t.Fatalf("NewPeer(%d): %v", p, err)
					}
					peers[p] = peer
				}
				return peers
			}
			const splitAt, epochs = 3, 6
			runEpoch := func(mesh *peerMesh, peers []*Peer, epoch int) []*tensor.Matrix {
				var outs []*tensor.Matrix
				for _, peer := range peers {
					peer.StartEpoch(epoch)
				}
				for _, bwd := range []bool{false, true} {
					in := h
					if bwd {
						in = g
					}
					mesh.scatter(in)
					if err := mesh.round(t, bwd); err != nil {
						t.Fatalf("epoch %d bwd=%v: %v", epoch, bwd, err)
					}
					got := tensor.New(d.NumNodes(), dim)
					mesh.gather(got)
					outs = append(outs, got)
				}
				return outs
			}

			peersA := build()
			meshA := newPeerMesh(t, peersA, d.NumNodes(), dim)
			var states []*PeerState
			var want [][]*tensor.Matrix
			for e := 0; e < epochs; e++ {
				if e == splitAt {
					for _, peer := range peersA {
						states = append(states, peer.State())
					}
				}
				outs := runEpoch(meshA, peersA, e)
				if e >= splitAt {
					want = append(want, outs)
				}
			}

			peersB := build()
			meshB := newPeerMesh(t, peersB, d.NumNodes(), dim)
			for p, peer := range peersB {
				if err := peer.Restore(states[p]); err != nil {
					t.Fatalf("Restore(%d): %v", p, err)
				}
			}
			for e := splitAt; e < epochs; e++ {
				outs := runEpoch(meshB, peersB, e)
				for i, got := range outs {
					if !got.Equal(want[e-splitAt][i], 0) {
						t.Fatalf("epoch %d round %d: resumed aggregate != uninterrupted (bit-exact required)", e, i)
					}
				}
			}
		})
	}
}

// TestPeerRestoreRejectsMismatch covers the validation errors.
func TestPeerRestoreRejectsMismatch(t *testing.T) {
	d, part := setup(t, 3)
	peer, err := NewPeer(d.Graph, part, 3, 0, dist.Config{SampleRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.Restore(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := peer.Restore(&PeerState{NParts: 4}); err == nil {
		t.Fatal("wrong nparts accepted")
	}
	if err := peer.Restore(&PeerState{NParts: 3}); err == nil {
		t.Fatal("missing pair streams accepted (config mismatch)")
	}
	if _, err := NewPeer(d.Graph, part, 3, 7, dist.Config{}); err == nil {
		t.Fatal("out-of-range peer id accepted")
	}
}
