package worker

import (
	"testing"

	"scgnn/internal/dist"
	"scgnn/internal/partition"
	"scgnn/internal/sched"
	"scgnn/internal/tensor"
)

// schedMatrix wraps every MethodMatrix combination in a variable-rate
// schedule annealing toward it: the scheduled cross-runtime tests run the
// exact 13-combo coverage the fixed-rate equivalence matrix does, plus the
// rung transitions. EpochsPerLevel 1 makes a 6-epoch run traverse the whole
// ladder.
func schedMatrix(seed int64) map[string]dist.Config {
	out := make(map[string]dist.Config)
	for name, cfg := range dist.MethodMatrix(seed) {
		cfg.Sched = sched.Policy{Enabled: true, EpochsPerLevel: 1}
		out["sched("+name+")"] = cfg
	}
	return out
}

// TestScheduledClusterEngineEquivalenceMatrix extends the cross-engine
// lockdown to scheduled runs: for every method combination under an active
// anneal, the worker cluster and the analytic engine (Workers 1 and 16) must
// pick bit-identical per-epoch schedules from their independently collected
// signals, match aggregates to fp32 wire precision, and match per-epoch
// traffic snapshots exactly — including through a mid-training Repartition,
// which reseeds dirty pairs without disturbing the schedule.
func TestScheduledClusterEngineEquivalenceMatrix(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	part2 := partition.Partition(d.Graph, nparts, partition.NodeCut, partition.Config{Seed: 5})
	h := randMat(d.NumNodes(), 5, 77)
	g := randMat(d.NumNodes(), 5, 78)

	for name, cfg := range schedMatrix(9) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cl := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer cl.Close()
			workerCounts := []int{1, 16}
			engs := make([]*dist.Engine, len(workerCounts))
			for i, w := range workerCounts {
				ec := cfg
				ec.Workers = w
				engs[i] = dist.NewEngine(d.Graph, part, nparts, ec)
			}
			for epoch := 0; epoch < 6; epoch++ {
				if epoch == 3 {
					wantDirty, err := cl.Repartition(part2)
					if err != nil {
						t.Fatalf("cluster Repartition: %v", err)
					}
					before := cl.ScheduleLevels()
					for _, eng := range engs {
						gotDirty, err := eng.Repartition(part2)
						if err != nil {
							t.Fatalf("engine Repartition: %v", err)
						}
						if len(gotDirty) != len(wantDirty) {
							t.Fatalf("dirty sets differ: engine %v, cluster %v", gotDirty, wantDirty)
						}
					}
					for i, lv := range cl.ScheduleLevels() {
						if lv != before[i] {
							t.Fatalf("Repartition changed pair %d rung %d→%d", i, before[i], lv)
						}
					}
				}
				cl.ResetTraffic()
				cl.StartEpoch(epoch)
				gotF := cl.Forward(h)
				gotB := cl.Backward(g)
				snap := cl.Snapshot()
				clLv := cl.ScheduleLevels()
				for i, eng := range engs {
					w := workerCounts[i]
					eng.StartEpoch(epoch)
					// Decisions exact: both runtimes ran the pure decision
					// function on their own signal snapshots.
					engLv := eng.ScheduleLevels()
					for pi := range clLv {
						if clLv[pi] != engLv[pi] {
							t.Fatalf("epoch %d workers %d: pair %d rung %d (cluster) vs %d (engine)",
								epoch, w, pi, clLv[pi], engLv[pi])
						}
					}
					wantF := eng.Forward(h)
					wantB := eng.Backward(g)
					if tol := 1e-3 * (1 + wantF.MaxAbs()); !gotF.Equal(wantF, tol) {
						t.Fatalf("epoch %d workers %d: forward diverged from engine", epoch, w)
					}
					if tol := 1e-3 * (1 + wantB.MaxAbs()); !gotB.Equal(wantB, tol) {
						t.Fatalf("epoch %d workers %d: backward diverged from engine", epoch, w)
					}
					es := eng.CaptureEpoch()
					if snap.TotalBytes != es.TotalBytes || snap.TotalMessages != es.TotalMessages ||
						snap.MaxInboundBytes != es.MaxInboundBytes || snap.MaxInboundMessages != es.MaxInboundMessages ||
						snap.MaxOutboundBytes != es.MaxOutboundBytes || snap.MaxOutboundMessages != es.MaxOutboundMessages {
						t.Fatalf("epoch %d workers %d: wire traffic %+v vs engine %+v", epoch, w, snap, es)
					}
				}
			}
		})
	}
}

// schedCoordinator is the test stand-in for the multi-process coordinator's
// schedule driver: it owns the decision-side scheduler, merges the replicas'
// signal snapshots per the exactness contract, and pushes the decided levels
// to every peer — the protocol internal/net speaks over SchedSig/SchedUpdate
// frames.
type schedCoordinator struct {
	s      *sched.Scheduler
	nparts int
}

func newSchedCoordinator(cfg dist.Config, nparts int) *schedCoordinator {
	return &schedCoordinator{
		s:      sched.New(cfg.Sched, cfg.BaseSetting(), cfg.Seed, nparts*nparts),
		nparts: nparts,
	}
}

func (sc *schedCoordinator) startEpoch(t *testing.T, epoch int, peers []*Peer) {
	t.Helper()
	perNode := make([][]sched.Signals, len(peers))
	for p, peer := range peers {
		perNode[p] = peer.SchedSignals()
	}
	sc.s.Advance(epoch, sched.MergeNodeSignals(sc.nparts, perNode))
	levels := sc.s.Levels()
	for p, peer := range peers {
		if err := peer.ApplySchedule(levels); err != nil {
			t.Fatalf("peer %d ApplySchedule: %v", p, err)
		}
	}
}

// TestScheduledPeerClusterEquivalence locks the externally driven schedule
// path to the self-advancing in-process cluster across the matrix: the
// coordinator merges per-replica signals, decides, and broadcasts, and the
// resulting schedules, aggregates, and traffic must match the cluster that
// decided alone — including through a mid-training Repartition.
func TestScheduledPeerClusterEquivalence(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	part2 := partition.Partition(d.Graph, nparts, partition.NodeCut, partition.Config{Seed: 5})
	h := randMat(d.NumNodes(), 5, 77)
	g := randMat(d.NumNodes(), 5, 78)
	want := tensor.New(d.NumNodes(), 5)

	for name, cfg := range schedMatrix(9) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cl := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer cl.Close()
			peers := make([]*Peer, nparts)
			for p := 0; p < nparts; p++ {
				peer, err := NewPeer(d.Graph, part, nparts, p, cfg)
				if err != nil {
					t.Fatalf("NewPeer(%d): %v", p, err)
				}
				peers[p] = peer
			}
			mesh := newPeerMesh(t, peers, d.NumNodes(), 5)
			coord := newSchedCoordinator(cfg, nparts)

			for epoch := 0; epoch < 6; epoch++ {
				if epoch == 3 {
					if _, err := cl.Repartition(part2); err != nil {
						t.Fatalf("cluster Repartition: %v", err)
					}
					for p, peer := range peers {
						if _, err := peer.Repartition(part2); err != nil {
							t.Fatalf("peer %d Repartition: %v", p, err)
						}
					}
				}
				cl.ResetTraffic()
				cl.StartEpoch(epoch)
				mesh.fabric.Reset()
				coord.startEpoch(t, epoch, peers)
				for p, peer := range peers {
					peer.StartEpoch(epoch)
					// Externally pushed levels must equal the self-advanced
					// cluster's — signal merging loses nothing the decision
					// reads.
					got, wantLv := peer.ScheduleLevels(), cl.ScheduleLevels()
					for i := range wantLv {
						if got[i] != wantLv[i] {
							t.Fatalf("epoch %d peer %d: pair %d rung %d, cluster %d",
								epoch, p, i, got[i], wantLv[i])
						}
					}
				}
				for _, bwd := range []bool{false, true} {
					in := h
					if bwd {
						in = g
					}
					var wantOut *tensor.Matrix
					if bwd {
						wantOut = cl.Backward(in)
					} else {
						wantOut = cl.Forward(in)
					}
					mesh.scatter(in)
					if err := mesh.round(t, bwd); err != nil {
						t.Fatalf("epoch %d bwd=%v: %v", epoch, bwd, err)
					}
					mesh.gather(want)
					if !want.Equal(wantOut, 1e-9*(1+wantOut.MaxAbs())) {
						t.Fatalf("epoch %d bwd=%v: peer aggregate diverged from cluster", epoch, bwd)
					}
				}
				if cs, ps := cl.Snapshot(), mesh.fabric.Capture(); cs != ps {
					t.Fatalf("epoch %d: peer traffic %+v vs cluster %+v", epoch, ps, cs)
				}
			}
		})
	}
}

// TestScheduledPeerStateRestoreRoundtrip pins the checkpoint contract
// mid-anneal: capture every replica's State (schedule levels riding along) at
// an epoch boundary while pairs sit on different rungs, rebuild fresh
// replicas, restore — including the coordinator's scheduler, recovered from
// node 0's state the way the net coordinator does — and the resumed mesh must
// reproduce the uninterrupted aggregates bit for bit.
func TestScheduledPeerStateRestoreRoundtrip(t *testing.T) {
	d, part := setup(t, 3)
	const nparts, dim = 3, 5
	h := randMat(d.NumNodes(), dim, 81)
	g := randMat(d.NumNodes(), dim, 82)

	for name, cfg := range map[string]dist.Config{
		"sched(quant4+ef)": {QuantBits: 4, ErrorFeedback: true, Seed: 9,
			Sched: sched.Policy{Enabled: true, EpochsPerLevel: 2}},
		"sched(semantic+nsampling)": {Semantic: true, SampleRate: 0.5, SampleNodes: true, Seed: 9,
			Sched: sched.Policy{Enabled: true, EpochsPerLevel: 2}},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			build := func() []*Peer {
				peers := make([]*Peer, nparts)
				for p := 0; p < nparts; p++ {
					peer, err := NewPeer(d.Graph, part, nparts, p, cfg)
					if err != nil {
						t.Fatalf("NewPeer(%d): %v", p, err)
					}
					peers[p] = peer
				}
				return peers
			}
			// splitAt 3 with EpochsPerLevel 2 lands mid-anneal: some pairs
			// already climbed, none at the base yet.
			const splitAt, epochs = 3, 8
			runEpoch := func(mesh *peerMesh, peers []*Peer, coord *schedCoordinator, epoch int) []*tensor.Matrix {
				var outs []*tensor.Matrix
				coord.startEpoch(t, epoch, peers)
				for _, peer := range peers {
					peer.StartEpoch(epoch)
				}
				for _, bwd := range []bool{false, true} {
					in := h
					if bwd {
						in = g
					}
					mesh.scatter(in)
					if err := mesh.round(t, bwd); err != nil {
						t.Fatalf("epoch %d bwd=%v: %v", epoch, bwd, err)
					}
					got := tensor.New(d.NumNodes(), dim)
					mesh.gather(got)
					outs = append(outs, got)
				}
				return outs
			}

			peersA := build()
			meshA := newPeerMesh(t, peersA, d.NumNodes(), dim)
			coordA := newSchedCoordinator(cfg, nparts)
			var states []*PeerState
			var want [][]*tensor.Matrix
			for e := 0; e < epochs; e++ {
				if e == splitAt {
					for _, peer := range peersA {
						states = append(states, peer.State())
					}
					if states[0].Levels == nil {
						t.Fatal("scheduled peer state carries no levels")
					}
					mid := false
					for _, lv := range states[0].Levels {
						if lv != 0 && int(lv) < len(sched.Ladder(cfg.BaseSetting()))-1 {
							mid = true
						}
					}
					if !mid {
						t.Fatalf("split epoch is not mid-anneal: levels %v", states[0].Levels)
					}
				}
				outs := runEpoch(meshA, peersA, coordA, e)
				if e >= splitAt {
					want = append(want, outs)
				}
			}

			peersB := build()
			meshB := newPeerMesh(t, peersB, d.NumNodes(), dim)
			for p, peer := range peersB {
				if err := peer.Restore(states[p]); err != nil {
					t.Fatalf("Restore(%d): %v", p, err)
				}
			}
			// The coordinator recovers its decision-side levels from node 0's
			// blob — the scheme the net coordinator uses on resume.
			coordB := newSchedCoordinator(cfg, nparts)
			lv := make([]int, len(states[0].Levels))
			for i, v := range states[0].Levels {
				lv[i] = int(v)
			}
			if _, err := coordB.s.SetLevels(lv); err != nil {
				t.Fatalf("coordinator SetLevels: %v", err)
			}
			for e := splitAt; e < epochs; e++ {
				outs := runEpoch(meshB, peersB, coordB, e)
				for i, got := range outs {
					if !got.Equal(want[e-splitAt][i], 0) {
						t.Fatalf("epoch %d round %d: resumed aggregate != uninterrupted (bit-exact required)", e, i)
					}
				}
			}
		})
	}
}

// TestApplyScheduleValidation covers the external-path error cases.
func TestApplyScheduleValidation(t *testing.T) {
	d, part := setup(t, 3)
	cl := NewClusterFromConfig(d.Graph, part, 3, dist.Config{QuantBits: 8, Seed: 1})
	defer cl.Close()
	if err := cl.ApplySchedule([]int{0}); err == nil {
		t.Fatal("ApplySchedule accepted without a schedule")
	}
	sc := NewClusterFromConfig(d.Graph, part, 3, dist.Config{QuantBits: 8, Seed: 1,
		Sched: sched.Policy{Enabled: true}})
	defer sc.Close()
	if err := sc.ApplySchedule([]int{0}); err == nil {
		t.Fatal("short level vector accepted")
	}
	if err := sc.ApplySchedule([]int{9, 9, 9, 9, 9, 9, 9, 9, 9}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := sc.ApplySchedule([]int{1, 0, 0, 0, 1, 0, 0, 0, 1}); err != nil {
		t.Fatalf("valid levels rejected: %v", err)
	}
	if got := sc.ScheduleLevels(); got[0] != 1 || got[4] != 1 || got[8] != 1 {
		t.Fatalf("levels not applied: %v", got)
	}
}
