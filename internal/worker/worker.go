// Package worker is the concurrent distributed runtime of the reproduction:
// P goroutine workers, one per partition, that exchange *real* serialized
// messages (internal/wire) over channels during every aggregate round —
// the closest laptop-scale analogue of the paper's multi-GPU deployment.
//
// It complements internal/dist: the analytic engine accounts traffic
// symbolically; the worker cluster executes the full Fig. 12(b) method
// matrix — vanilla per-edge exchange, SC-GNN semantic compression, Bernoulli
// edge/node sampling, fixed and variance-adaptive wire quantization,
// quantized error feedback, and delayed transmission — with actual
// concurrency, actual fp32 wire encoding, and bytes measured off the encoded
// buffers. Tests assert that the cluster's aggregates match the sequential
// engine to fp32 precision and that its measured bytes equal the engine's
// analytic accounting exactly, for every method combination.
//
// # Per-pair compression state
//
// All stateful compression (sampler RNG streams, adaptive-width choices,
// error-feedback residuals) lives in one pairState per ordered partition
// pair, seeded with compress.DeriveSeed(seed, s·nparts+t) — the engine's
// exact scheme. A pair is touched by exactly one worker per round (its src
// part forward, its dst part backward), and the round barrier orders rounds,
// so the state needs no locking and consumes its RNG stream in the same
// unit order as the engine — which is what makes drop decisions, chosen bit
// widths, and traffic identical across the two runtimes.
//
// # Delayed transmission
//
// With SetDelay(period), each aggregate-round slot keeps a retained delta
// matrix: fresh rounds (epoch % period == 0, or an unfilled slot) decode the
// remote contributions into the slot and add it to the output; replay rounds
// add the cached slot with zero traffic. StartEvalEpoch forces a fresh pass
// that neither reads nor writes the cache, so a final evaluation never
// scores the model against stale replays (mirroring the engine's
// StartEvalEpoch contract). The replay/fresh decision is made once by the
// coordinator before workers are released, so every worker agrees on it.
//
// # Round-barrier protocol
//
// NewCluster spawns the nparts workers once; they stay parked between rounds.
// Each aggregate round the coordinator (the goroutine calling Forward,
// Backward, or AggregateInto — there must be exactly one at a time) publishes
// the round inputs, releases every worker through its start channel, and
// blocks on a barrier. Each worker then runs three phases:
//
//	localPhase   — within-partition part of Â·h for the rows it owns
//	sendPhase    — encode its outgoing halo into retained wire.Batch buffers,
//	               one framed buffer per peer, delivered to the peer's inbox
//	receivePhase — stream-decode the nparts−1 inbound buffers straight into
//	               the output rows it owns (wire.Decoder, no intermediate
//	               message or payload allocation)
//
// and signals the barrier. After the barrier the coordinator drains each
// worker's traffic shard into the fabric in worker order, so per-link totals
// are exact and schedule-free. Inboxes, encode buffers, and payload scratch
// are retained across rounds: a steady-state round performs no allocations.
//
// # Buffer-reuse contract
//
// Encoded buffers are owned by their sending worker and reused the very next
// round; receivers must fully consume a buffer during the round it was
// delivered (the streaming decoder copies values out as it accumulates) and
// must not retain it or any decoded payload view past the round barrier.
//
// # Errors and shutdown
//
// A corrupt inbound batch no longer panics inside a worker goroutine (which
// would kill the process): the decode error travels through the barrier,
// AggregateInto returns it, and the cluster becomes permanently poisoned —
// every later round returns the same error, since workers may have dropped
// contributions mid-round. Forward/Backward, whose gnn.Aggregator signatures
// have no error result, panic with that error on the *caller's* goroutine,
// where it is recoverable. Close releases the worker goroutines; it is
// idempotent and must not race a round in flight.
package worker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"scgnn/internal/compress"
	"scgnn/internal/core"
	"scgnn/internal/dist"
	"scgnn/internal/graph"
	"scgnn/internal/sched"
	"scgnn/internal/simnet"
	"scgnn/internal/tensor"
	"scgnn/internal/wire"
)

// Cluster is a persistent pool of goroutine workers jointly computing the
// partitioned GCN aggregate Â·h. It implements gnn.Aggregator, so models
// train on it unchanged. Rounds must be driven by one goroutine at a time;
// Traffic, Snapshot, and ResetTraffic may be called concurrently with rounds.
type Cluster struct {
	g      *graph.Graph
	part   []int
	nparts int
	coeff  []float64

	semantic bool
	// planCache owns the semantic plans and rebuilds only dirty pairs on
	// Repartition (nil when semantic is off).
	planCache *core.PlanCache
	plans     []*core.PairPlan // index s*nparts+t; nil when no cross edges
	revGroups [][]*core.Group

	// Compiled gather plans (see gather.go for the invalidation
	// contract): kernels[idx] is pair idx's flattened encode/deliver
	// lists (semantic only), local[p] worker p's local-aggregation CSR
	// in boundary-first row order. boundScratch is compileLocal's
	// retained mark vector.
	kernels      []pairKernels
	local        []*localPlan
	boundScratch []bool
	// useReference routes the round phases through the retained
	// pre-kernel implementations — the bit-identity oracle the
	// equivalence tests compare the fused kernels against. Set before
	// any round; must not race a round in flight.
	useReference bool
	// phaseHook, when non-nil, observes each worker's round phases in
	// execution order ("local-boundary", "send", "local-interior",
	// "receive") — test instrumentation for the boundary-first schedule.
	// Called from worker goroutines; implementations must be
	// thread-safe. Set before any round.
	phaseHook func(worker int, phase string)

	// buckets is the CSR-of-pairs bucketing of the current partition's cross
	// arcs, retained so Repartition can diff against it. spare is the
	// bucketing the previous Repartition displaced, recycled as extraction
	// scratch.
	buckets, spare *graph.ArcBuckets
	// crossOut[s*nparts+t] lists arcs u→v with part[u]=s, part[v]=t —
	// pair (s→t)'s arc bucket.
	crossOut [][]graph.Edge
	// own[p] lists the nodes owned by worker p.
	own [][]int32

	// quantBits > 0 quantizes every payload before encoding; bytes reflect
	// the reduced wire size: ceil(n·bits/8) + 8 metadata in place of 4n
	// (+1 width byte under adaptive quantization).
	quantBits int
	// Method configuration behind the stateful paths; rebuildPairs derives
	// the per-pair state below from these.
	sampleRate  float64
	sampleNodes bool
	seed        int64
	adaptive    bool
	efOn        bool
	delayPeriod int
	// pairs[s*nparts+t] holds the ordered pair's sampler / adaptive
	// quantizer / error-feedback residual store (nil when no stateful method
	// is enabled). A pair is touched by exactly one worker per round (its
	// src part forward, its dst part backward), with a barrier between
	// rounds, so the state needs no locking.
	pairs []pairState

	// schedule holds the variable-rate communication schedule (nil when
	// disabled): reseedPair reads each pair's current rung from it, and pairs
	// is always non-nil while it is set (every rung below the base carries
	// stateful compression). schedExternal marks a transport-driven replica
	// (a Peer): its schedule advances only through ApplySchedule — the
	// coordinator runs the decision function and broadcasts levels — never
	// through StartEpoch.
	schedule      *sched.Scheduler
	schedExternal bool

	// delaySlots[round] is the retained remote-delta matrix of one
	// aggregate-round slot (layer × direction); delayFilled marks slots that
	// hold a usable cached delta. Only the coordinator touches these outside
	// a round; workers write disjoint rows during fresh rounds.
	delaySlots  []*tensor.Matrix
	delayFilled []bool

	// Traffic accounting mirrors the engine's shard-and-merge scheme instead
	// of hot-loop atomics: each worker records its sends on its own
	// ShardCounter (no cross-core contention during the round) and the
	// counters are drained into the fabric after the round barrier, in worker
	// order, so per-link totals are exact and schedule-free.
	trafficMu sync.Mutex
	fabric    *simnet.Fabric
	counters  []*simnet.ShardCounter // one per worker

	// --- persistent pool state ---

	// inbox[t] receives exactly nparts-1 framed batch buffers per round.
	inbox []chan []byte
	// start[p] releases worker p into the next round.
	start   []chan struct{}
	quit    chan struct{}
	barrier sync.WaitGroup
	closed  atomic.Bool
	once    sync.Once

	// Round inputs: written by the coordinator before the start signals,
	// read by workers after — the channel send orders the accesses.
	roundH        *tensor.Matrix
	roundOut      *tensor.Matrix
	roundBackward bool
	// roundTarget is where workers accumulate remote contributions this
	// round: roundOut normally, a delay slot on fresh delayed rounds, the
	// filled slot on replay rounds.
	roundTarget *tensor.Matrix
	// roundReplay marks a delayed-replay round: no send/receive, just add
	// the cached slot (decided by the coordinator, so all workers agree).
	roundReplay bool
	// roundErrs[p] is worker p's decode error for the round (nil if clean);
	// each entry is written only by its owner during the round.
	roundErrs []error
	// round is the aggregate-round slot within the current epoch (layer ×
	// direction), the stable half of error-feedback unit keys and the delay
	// cache index. StartEpoch resets it.
	round int
	// epoch and freshEval drive the delayed-transmission schedule (set by
	// StartEpoch / StartEvalEpoch).
	epoch     int
	freshEval bool
	// err poisons the cluster after the first failed round.
	err error

	// ws[p] is worker p's retained scratch: encode buffers, payload and
	// decode vectors, error-feedback staging.
	ws []workerScratch
}

// pairState is the per-ordered-partition-pair compression state, mirroring
// the engine's struct of the same name: every stream is seeded and consumed
// identically, so the two runtimes make identical drop and width decisions.
type pairState struct {
	sampler     *compress.Sampler
	nodeSampler *compress.NodeSampler
	adaptive    *compress.AdaptiveQuantizer
	ef          *compress.ErrorFeedback
	// bits is the pair's fixed quantization width under variable-rate
	// scheduling (0 = unquantized rung); without a schedule the global
	// quantBits applies and this field is ignored.
	bits int
}

// groupCoinKey maps a plan-group index into the dedicated negative key space
// of the per-pair node sampler, disjoint from boundary-node ids (always ≥ 0)
// — the engine's exact keying, so group coins replay identically.
func groupCoinKey(gi int) int32 { return int32(-1 - gi) }

// workerScratch is the per-worker buffer set retained across rounds. Slices
// grow to the largest feature dimension seen and are then reused; after
// warm-up a round allocates nothing.
type workerScratch struct {
	batches []wire.Batch // one encode buffer per peer (self entry unused)
	msg     wire.Message // reused header struct for encoding
	payload []float64    // outgoing payload / group-fuse accumulator
	dec     []float64    // inbound group payload staging
	efTrue  []float64    // error feedback: residual-corrected true values
	efSent  []float64    // error feedback: receiver-reconstructed values
}

func (ws *workerScratch) ensure(dim int) {
	if cap(ws.payload) < dim {
		ws.payload = make([]float64, dim)
		ws.dec = make([]float64, dim)
		ws.efTrue = make([]float64, dim)
		ws.efSent = make([]float64, dim)
	}
}

// SetQuantization enables b-bit payload quantization on the wire (0
// disables). Call before training starts; must not race a round in flight.
func (c *Cluster) SetQuantization(bits int) {
	if bits != 0 {
		compress.NewQuantizer(bits) // validate range, panics on bad input
	}
	c.quantBits = bits
	c.rebuildPairs()
}

// SetAdaptiveQuant switches the quantized wire path to variance-adaptive bit
// allocation: each message picks its width in [2, quantBits] from the
// payload's dynamic range (AdaQP's adaptive idea), shipped in the wire
// format's adaptive variant whose extra width byte matches the engine's
// +9-byte metadata accounting. Takes effect only when quantization is
// enabled. Call before training starts; must not race a round in flight.
func (c *Cluster) SetAdaptiveQuant(on bool) {
	c.adaptive = on
	c.rebuildPairs()
}

// SetSampling enables Bernoulli sampling of transfer units at the given keep
// rate: per-edge coins by default, per-boundary-node coins (BNS-GCN's
// granularity; one coin per (node, destination pair) per round, groups keyed
// separately) when nodes is true. Kept units rescale by 1/rate. Every
// ordered pair derives its own decorrelated stream from seed via
// compress.DeriveSeed — the engine's exact scheme, so drop decisions match
// it coin for coin. A rate outside (0,1) disables sampling. Call before
// training starts; must not race a round in flight.
func (c *Cluster) SetSampling(rate float64, nodes bool, seed int64) {
	if rate <= 0 || rate >= 1 {
		rate = 0
	}
	c.sampleRate = rate
	c.sampleNodes = nodes
	c.seed = seed
	c.rebuildPairs()
}

// SetDelay enables delayed transmission with the given period: fresh values
// every period epochs (per aggregate-round slot), cached replays with zero
// traffic in between. Callers must mark epoch boundaries with StartEpoch so
// the schedule advances, and should use StartEvalEpoch for measurement
// passes (see the package comment). A period ≤ 1 disables. Call before
// training starts; must not race a round in flight.
func (c *Cluster) SetDelay(period int) {
	if period > 1 {
		compress.NewDelayCache(period) // validate, panics on bad input
		c.delayPeriod = period
	} else {
		c.delayPeriod = 0
	}
	c.delaySlots = nil
	c.delayFilled = nil
}

// SetErrorFeedback toggles residual error feedback on the quantized wire
// path: each transfer unit's quantization error (measured against the exact
// fp32 reconstruction the receiver computes) is carried into its next round,
// the same scheme internal/dist runs analytically. It only takes effect when
// quantization is enabled, and callers must mark epoch boundaries with
// StartEpoch so residual keys line up across epochs. Call before training
// starts; must not race a round in flight.
func (c *Cluster) SetErrorFeedback(on bool) {
	c.efOn = on
	c.rebuildPairs()
}

// rebuildPairs derives the per-pair compression state from the current
// method configuration. Setters call it, so configuration is
// order-independent and always starts training from pristine streams. With a
// schedule installed the pair array always exists: rungs below the base
// carry their own samplers and quantizers even when the base config has no
// stateful method.
func (c *Cluster) rebuildPairs() {
	if c.schedule == nil {
		samplingOn := c.sampleRate > 0 && c.sampleRate < 1
		adaptiveOn := c.adaptive && c.quantBits > 0
		efOn := c.efOn && c.quantBits > 0
		if !samplingOn && !adaptiveOn && !efOn {
			c.pairs = nil
			return
		}
	}
	c.pairs = make([]pairState, c.nparts*c.nparts)
	for idx := range c.pairs {
		c.reseedPair(idx)
	}
}

// pairSetting resolves the compression gates pair idx currently runs — the
// scheduler's rung when variable-rate scheduling is on, else the cluster's
// global method configuration — mirroring the engine's resolution exactly.
func (c *Cluster) pairSetting(idx int) sched.Setting {
	if c.schedule != nil {
		return c.schedule.Setting(idx)
	}
	return sched.Setting{
		SampleRate:  c.sampleRate,
		SampleNodes: c.sampleNodes,
		QuantBits:   c.quantBits,
		Adaptive:    c.adaptive,
		EF:          c.efOn,
	}
}

// reseedPair (re)creates one ordered pair's compression state from scratch
// under its current setting — the sampler restarts its DeriveSeed(seed, idx)
// stream, the adaptive quantizer and error-feedback store drop their history
// — exactly like the same pair in a freshly built cluster. Repartition calls
// this for dirty pairs only, and the scheduler for pairs whose rung changed,
// mirroring the engine's initPairState so the two runtimes stay equivalent
// after any reconfiguration.
func (c *Cluster) reseedPair(idx int) {
	if c.pairs == nil {
		return
	}
	ps := &c.pairs[idx]
	*ps = pairState{}
	if idx/c.nparts == idx%c.nparts {
		return
	}
	st := c.pairSetting(idx)
	if st.SampleRate > 0 && st.SampleRate < 1 {
		pairSeed := compress.DeriveSeed(c.seed, idx)
		if st.SampleNodes {
			ps.nodeSampler = compress.NewNodeSampler(st.SampleRate, pairSeed)
		} else {
			ps.sampler = compress.NewSampler(st.SampleRate, pairSeed)
		}
	}
	if st.QuantBits > 0 && st.QuantBits < 32 {
		ps.bits = st.QuantBits
		if st.Adaptive {
			minBits := 2
			if st.QuantBits < minBits {
				minBits = st.QuantBits
			}
			ps.adaptive = compress.NewAdaptiveQuantizer(minBits, st.QuantBits, 0)
		}
		if st.EF {
			ps.ef = compress.NewErrorFeedback()
		}
	}
}

// pairAt returns the ordered pair's compression state, or nil when no
// stateful method is configured.
func (c *Cluster) pairAt(idx int) *pairState {
	if c.pairs == nil {
		return nil
	}
	return &c.pairs[idx]
}

// StartEpoch marks an epoch boundary: it resets the aggregate-round slot
// that keys error-feedback residuals and the delay cache, and advances the
// delayed-transmission schedule to the given epoch (gnn.Train calls this
// through the gnn.EpochMarker interface). Harmless when neither method is
// on. With variable-rate scheduling the boundary is also the decision point:
// the scheduler reads every pair's signal snapshot, runs the pure decision
// function, and pairs whose rung changed are reseeded from scratch — unless
// the replica is transport-driven, in which case the coordinator decides and
// broadcasts levels through ApplySchedule before releasing the epoch.
func (c *Cluster) StartEpoch(epoch int) {
	if c.schedule != nil && !c.schedExternal {
		for _, idx := range c.schedule.Advance(epoch, c.SchedSignals()) {
			c.reseedPair(idx)
		}
	}
	c.epoch = epoch
	c.round = 0
	c.freshEval = false
}

// SchedSignals snapshots every pair's scheduler-visible counters (nil when
// scheduling is off) under the sched package's signal contract: the integer
// fields are exact on every runtime, the float fields are diagnostics. A
// transport-driven replica reports its local snapshot; the coordinator
// merges replicas with sched.Signals.Merge.
func (c *Cluster) SchedSignals() []sched.Signals {
	if c.schedule == nil {
		return nil
	}
	sigs := make([]sched.Signals, len(c.pairs))
	for idx := range c.pairs {
		ps := &c.pairs[idx]
		sg := &sigs[idx]
		if ps.sampler != nil {
			sg.Draws = ps.sampler.Draws()
		}
		if ps.adaptive != nil {
			sg.BitsSum = ps.adaptive.BitsSum
			sg.BitsCalls = ps.adaptive.Calls
			sg.LastBits = ps.adaptive.LastBits
		}
		if ps.ef != nil {
			sg.EFUnits = int64(ps.ef.Units())
			sg.EFCorrected = ps.ef.Corrected
			sg.ResidualNorm = ps.ef.ResidualNorm()
		}
	}
	return sigs
}

// ScheduleLevels returns a copy of the current per-pair rung levels, or nil
// when variable-rate scheduling is disabled.
func (c *Cluster) ScheduleLevels() []int {
	if c.schedule == nil {
		return nil
	}
	return c.schedule.Levels()
}

// ApplySchedule installs coordinator-decided per-pair rung levels on a
// transport-driven replica, reseeding every pair whose rung changed. Must be
// called between rounds (the coordinator sends it before the epoch frame).
// Returns an error when scheduling is off or the levels are malformed; the
// cluster is unchanged on error.
func (c *Cluster) ApplySchedule(levels []int) error {
	if c.schedule == nil {
		return errors.New("worker: ApplySchedule without a schedule")
	}
	changed, err := c.schedule.SetLevels(levels)
	if err != nil {
		return err
	}
	for _, idx := range changed {
		c.reseedPair(idx)
	}
	return nil
}

// StartEvalEpoch prepares a measurement-only pass: like StartEpoch, but
// delayed transmission is bypassed — the pass computes fresh remote
// contributions without reading or writing the delay cache, so a final
// evaluation never scores the model against stale replays. gnn.Train calls
// this through the gnn.EvalMarker interface with the actual next epoch
// before the final accuracy pass.
func (c *Cluster) StartEvalEpoch(epoch int) {
	c.StartEpoch(epoch)
	c.freshEval = true
}

// NewCluster builds the worker runtime and spawns its nparts persistent
// workers. When semantic is true, planCfg drives grouping; otherwise the
// vanilla per-edge exchange is used. Call Close when done with the cluster to
// release the worker goroutines.
func NewCluster(g *graph.Graph, part []int, nparts int, semantic bool, planCfg core.PlanConfig) *Cluster {
	c := newClusterState(g, part, nparts, semantic, planCfg)
	for p := 0; p < nparts; p++ {
		go c.run(p)
	}
	return c
}

// newClusterState builds every piece of cluster state — ownership, cross-arc
// buckets, semantic plans, compiled kernels — without spawning the worker
// goroutines. NewCluster adds the goroutine pool for the in-process runtime;
// NewPeer reuses the state as-is, with rounds driven externally by the
// multi-process transport.
func newClusterState(g *graph.Graph, part []int, nparts int, semantic bool, planCfg core.PlanConfig) *Cluster {
	if len(part) != g.NumNodes() {
		panic(fmt.Sprintf("worker: partition len %d, want %d", len(part), g.NumNodes()))
	}
	c := &Cluster{
		g:         g,
		part:      part,
		nparts:    nparts,
		coeff:     g.SymNormCoeffs(),
		semantic:  semantic,
		crossOut:  make([][]graph.Edge, nparts*nparts),
		own:       make([][]int32, nparts),
		fabric:    simnet.NewFabric(nparts),
		counters:  make([]*simnet.ShardCounter, nparts),
		inbox:     make([]chan []byte, nparts),
		start:     make([]chan struct{}, nparts),
		quit:      make(chan struct{}),
		roundErrs: make([]error, nparts),
		ws:        make([]workerScratch, nparts),
	}
	for p := 0; p < nparts; p++ {
		c.counters[p] = simnet.NewShardCounter(nparts)
		c.inbox[p] = make(chan []byte, nparts)
		c.start[p] = make(chan struct{})
		c.ws[p].batches = make([]wire.Batch, nparts)
	}
	c.buckets = graph.ExtractArcBuckets(g, part, nparts)
	for idx := range c.crossOut {
		c.crossOut[idx] = c.buckets.Edges(idx)
	}
	c.rebuildOwnership(part)
	if semantic {
		pc, err := core.NewPlanCache(g, part, nparts, planCfg)
		if err != nil {
			panic("worker: " + err.Error())
		}
		c.planCache = pc
		c.plans = make([]*core.PairPlan, nparts*nparts)
		c.revGroups = make([][]*core.Group, nparts*nparts)
		c.kernels = make([]pairKernels, nparts*nparts)
		for idx := range c.plans {
			c.installPlan(idx)
		}
	}
	c.local = make([]*localPlan, nparts)
	for p := 0; p < nparts; p++ {
		c.local[p] = c.compileLocal(p)
	}
	return c
}

// rebuildOwnership recomputes own[p] (ascending node ids per worker) from a
// partition vector.
func (c *Cluster) rebuildOwnership(part []int) {
	c.own = make([][]int32, c.nparts)
	for u := int32(0); int(u) < c.g.NumNodes(); u++ {
		c.own[part[u]] = append(c.own[part[u]], u)
	}
}

// installPlan refreshes the cluster's view of pair idx's semantic plan from
// the plan cache: the cached reversed groups for the backward pass and the
// compiled encode/deliver gather kernels for both directions. This is the
// single recompile point, so the kernels can never go stale against the
// plan they ride.
func (c *Cluster) installPlan(idx int) {
	p := c.planCache.Plan(idx)
	c.plans[idx] = p
	if p == nil {
		c.revGroups[idx] = nil
	} else {
		c.revGroups[idx] = core.ReverseGroups(p)
	}
	c.compilePairKernels(idx)
}

// Repartition moves the cluster to a new partition of the same graph,
// rebuilding only what the partition change actually touched — the worker
// runtime's mirror of dist.Engine.Repartition, and subject to the same
// contract: pairs whose boundary sets are unchanged keep their plan,
// cross-edge list, and compression state verbatim; dirty pairs get a rebuilt
// plan (bit-identical to a from-scratch build) and freshly re-seeded
// sampler/adaptive/EF streams; delay slots (whole-round aggregates) are
// invalidated iff any pair is dirty. The partition vector is copied. Must
// not race a round in flight. Returns the ascending dirty pair indices; on
// error the cluster is unchanged.
func (c *Cluster) Repartition(part []int) ([]int, error) {
	if err := graph.ValidatePartition(c.g.NumNodes(), part, c.nparts); err != nil {
		return nil, fmt.Errorf("worker: Repartition: %w", err)
	}
	nb := graph.ExtractArcBucketsInto(c.spare, c.g, part, c.nparts)
	var dirty []int
	if c.planCache != nil {
		dirty = c.planCache.RepartitionBuckets(nb)
		for _, idx := range dirty {
			c.installPlan(idx)
		}
	} else {
		dirty = graph.DiffDBGs(c.buckets, nb)
	}
	// Which local gather plans the move invalidates — decided against the
	// OLD partition vector, before it is overwritten below.
	dirtyParts := c.dirtyLocalParts(part, dirty)
	c.spare = c.buckets // displaced; recycled by the next extraction
	c.buckets = nb
	c.part = append([]int(nil), part...)
	c.rebuildOwnership(c.part)
	for _, idx := range dirty {
		c.crossOut[idx] = nb.Edges(idx)
		c.reseedPair(idx)
	}
	// Local plans compile from the NEW ownership/plans/crossOut, so this
	// must come after everything above.
	for p, d := range dirtyParts {
		if d {
			c.local[p] = c.compileLocal(p)
		}
	}
	if len(dirty) > 0 {
		// Slots hold whole-round aggregates over all pairs; any dirty plan
		// makes every replay stale. Matrices are retained (fresh rounds fully
		// rewrite them), only the filled marks drop.
		for i := range c.delayFilled {
			c.delayFilled[i] = false
		}
	}
	return dirty, nil
}

// NewClusterFromConfig builds a cluster running the same method combination
// as a dist.Engine configured with cfg — the canonical mapping used by
// TrainConcurrent, the ablation harness, and the cross-engine equivalence
// tests. Gates mirror the engine exactly: quantization is active for
// QuantBits in (0,32), sampling for SampleRate in (0,1), delay for
// DelayPeriod > 1; AdaptiveQuant and ErrorFeedback ride on quantization.
func NewClusterFromConfig(g *graph.Graph, part []int, nparts int, cfg dist.Config) *Cluster {
	c := NewCluster(g, part, nparts, cfg.Semantic, cfg.Plan)
	c.applyConfig(cfg)
	return c
}

// applyConfig maps a dist.Config onto the method setters with the engine's
// exact gating, shared by NewClusterFromConfig and NewPeer. Variable-rate
// scheduling is enabled last: the scheduler's ladder anneals toward the base
// gates the setters just configured, and the final rebuild derives every
// pair's state from its rung.
func (c *Cluster) applyConfig(cfg dist.Config) {
	if cfg.QuantBits > 0 && cfg.QuantBits < 32 {
		c.SetQuantization(cfg.QuantBits)
		c.SetAdaptiveQuant(cfg.AdaptiveQuant)
		c.SetErrorFeedback(cfg.ErrorFeedback)
	}
	if cfg.SampleRate > 0 && cfg.SampleRate < 1 {
		c.SetSampling(cfg.SampleRate, cfg.SampleNodes, cfg.Seed)
	}
	if cfg.DelayPeriod > 1 {
		c.SetDelay(cfg.DelayPeriod)
	}
	if cfg.Sched.Enabled {
		// Rung streams derive from cfg.Seed even when the base has no
		// sampling (where no setter recorded the seed).
		c.seed = cfg.Seed
		c.schedule = sched.New(cfg.Sched, cfg.BaseSetting(), cfg.Seed, c.nparts*c.nparts)
		c.rebuildPairs()
	}
}

// Close releases the persistent worker goroutines. It is idempotent, must
// not race a round in flight, and leaves traffic counters readable.
func (c *Cluster) Close() {
	c.once.Do(func() {
		c.closed.Store(true)
		close(c.quit)
	})
}

// ResetTraffic clears the byte/message counters.
func (c *Cluster) ResetTraffic() {
	c.trafficMu.Lock()
	defer c.trafficMu.Unlock()
	c.fabric.Reset()
}

// Traffic returns the real encoded bytes and message count since the last
// reset.
func (c *Cluster) Traffic() (bytes, msgs int64) {
	c.trafficMu.Lock()
	defer c.trafficMu.Unlock()
	return c.fabric.TotalBytes(), c.fabric.TotalMessages()
}

// Snapshot freezes the per-link traffic accumulated since the last reset
// (same shape the analytic engine reports), for cost-model consumers.
func (c *Cluster) Snapshot() simnet.Snapshot {
	c.trafficMu.Lock()
	defer c.trafficMu.Unlock()
	return c.fabric.Capture()
}

// Forward implements gnn.Aggregator with a concurrent halo exchange. It
// panics (recoverably, on the caller's goroutine) if the round fails; use
// AggregateInto to receive the error instead.
func (c *Cluster) Forward(h *tensor.Matrix) *tensor.Matrix { return c.mustAggregate(h, false) }

// Backward implements gnn.Aggregator; gradients flow along transposed edges.
// It panics (recoverably, on the caller's goroutine) if the round fails; use
// AggregateInto to receive the error instead.
func (c *Cluster) Backward(g *tensor.Matrix) *tensor.Matrix { return c.mustAggregate(g, true) }

func (c *Cluster) mustAggregate(h *tensor.Matrix, backward bool) *tensor.Matrix {
	out := tensor.New(h.Rows, h.Cols)
	if err := c.AggregateInto(out, h, backward); err != nil {
		panic(err)
	}
	return out
}

// AggregateInto runs one concurrent round into dst (which it zeroes first):
// every worker computes its local aggregate, encodes its outgoing halo as
// wire batches, exchanges them over channels, and accumulates the decoded
// remote contributions into the rows it owns. Reusing one dst across rounds
// makes the steady state allocation-free. A non-nil error means the round's
// output is unusable and the cluster is poisoned (see the package comment).
func (c *Cluster) AggregateInto(dst, h *tensor.Matrix, backward bool) error {
	if c.closed.Load() {
		return errors.New("worker: cluster is closed")
	}
	if c.err != nil {
		return c.err
	}
	n := c.g.NumNodes()
	if h.Rows != n {
		panic(fmt.Sprintf("worker: matrix rows %d, graph nodes %d", h.Rows, n))
	}
	if dst.Rows != n || dst.Cols != h.Cols {
		panic(fmt.Sprintf("worker: dst shape (%d,%d), want (%d,%d)", dst.Rows, dst.Cols, n, h.Cols))
	}
	dst.Zero()
	round := c.round
	// Delayed transmission: the coordinator decides replay vs fresh before
	// the workers are released, so every worker agrees on the round shape.
	// Fresh delayed rounds accumulate the remote delta into the round slot's
	// retained matrix (the wire-runtime analogue of DelayCache.Store, without
	// the per-round clone); replay rounds add the cached slot with zero
	// traffic; a forced-fresh eval pass bypasses the cache in both directions.
	delayOn := c.delayPeriod > 1 && !c.freshEval
	replay := false
	target := dst
	if delayOn {
		transmit := c.epoch%c.delayPeriod == 0
		filled := round < len(c.delayFilled) && c.delayFilled[round]
		if !transmit && filled {
			replay = true
			target = c.delaySlots[round]
		} else {
			for len(c.delaySlots) <= round {
				c.delaySlots = append(c.delaySlots, nil)
				c.delayFilled = append(c.delayFilled, false)
			}
			slot := c.delaySlots[round]
			if slot == nil || slot.Rows != dst.Rows || slot.Cols != dst.Cols {
				slot = tensor.New(dst.Rows, dst.Cols)
				c.delaySlots[round] = slot
				c.delayFilled[round] = false
			}
			target = slot
		}
	}
	c.roundH, c.roundOut, c.roundBackward = h, dst, backward
	c.roundTarget, c.roundReplay = target, replay
	c.barrier.Add(c.nparts)
	for _, ch := range c.start {
		ch <- struct{}{}
	}
	c.barrier.Wait()
	c.roundH, c.roundOut, c.roundTarget = nil, nil, nil
	c.round++
	// Drain each worker's round traffic into the fabric after the barrier,
	// in worker order — totals are independent of goroutine scheduling.
	c.trafficMu.Lock()
	for _, sc := range c.counters {
		c.fabric.Drain(sc)
	}
	c.trafficMu.Unlock()
	for _, err := range c.roundErrs {
		if err != nil {
			c.err = err
			return err
		}
	}
	if delayOn && !replay {
		c.delayFilled[round] = true
	}
	return nil
}

// run is the persistent worker loop: park until released, execute the round
// phases, hit the barrier, repeat. Rounds with an exchange are scheduled
// boundary-first: the rows peers are waiting on (the worker's outgoing
// boundary) aggregate first so sendPhase launches as early as possible, and
// the interior aggregation — which no peer depends on — runs between send
// and receive, overlapping the peers' decode work. Every row's accumulation
// is self-contained and sendPhase reads only h, so the reordering is
// output-invariant (bit-identical to local→send→receive).
func (c *Cluster) run(me int) {
	for {
		select {
		case <-c.quit:
			return
		case <-c.start[me]:
		}
		h, out, backward := c.roundH, c.roundOut, c.roundBackward
		target, replay := c.roundTarget, c.roundReplay
		c.ws[me].ensure(h.Cols)
		if replay {
			// Delayed replay: no exchange at all — aggregate locally, then
			// add the cached remote delta for the rows this worker owns
			// (the engine's AddInPlace, row-sharded).
			lp := c.local[me]
			c.localRows(me, h, out, 0, len(lp.rows))
			for _, u := range c.own[me] {
				tensor.AXPY(1, target.Row(int(u)), out.Row(int(u)))
			}
			c.roundErrs[me] = nil
			c.barrier.Done()
			continue
		}
		lp := c.local[me]
		c.localRows(me, h, out, 0, lp.nBoundary)
		c.hook(me, "local-boundary")
		c.sendPhase(me, h, backward)
		c.hook(me, "send")
		if target != out {
			// Fresh delayed round: the slot holds last period's delta; clear
			// this worker's rows before accumulating the new one. Every row
			// is owned by exactly one worker, so the slot is fully rewritten.
			for _, u := range c.own[me] {
				clear(target.Row(int(u)))
			}
		}
		c.localRows(me, h, out, lp.nBoundary, len(lp.rows))
		c.hook(me, "local-interior")
		err := c.receivePhase(me, backward, target)
		c.hook(me, "receive")
		if err == nil && target != out {
			for _, u := range c.own[me] {
				tensor.AXPY(1, target.Row(int(u)), out.Row(int(u)))
			}
		}
		c.roundErrs[me] = err
		c.barrier.Done()
	}
}

// hook reports a completed phase to the test instrumentation, if any.
func (c *Cluster) hook(me int, phase string) {
	if c.phaseHook != nil {
		c.phaseHook(me, phase)
	}
}

// localRows computes rows [from, to) of worker me's local plan — the
// within-partition part of Â·h for those rows. The compiled CSR bakes the
// self-loop and same-partition neighbor terms (coefficients included) per
// row, so the fused gather kernel replaces the per-arc partition test and
// per-neighbor AXPY of the reference path below.
func (c *Cluster) localRows(me int, h, out *tensor.Matrix, from, to int) {
	lp := c.local[me]
	if c.useReference {
		c.localRowsReference(me, h, out, from, to)
		return
	}
	for i := from; i < to; i++ {
		lo, hi := lp.off[i], lp.off[i+1]
		tensor.GatherAXPY(out.Row(int(lp.rows[i])), h, lp.nbr[lo:hi], lp.w[lo:hi], 1)
	}
}

// localRowsReference is the pre-kernel local aggregation, retained as the
// bit-identity oracle the kernel-equivalence tests run the cluster on. It
// walks the same plan rows, so the only difference from localRows is the
// per-arc traversal itself.
func (c *Cluster) localRowsReference(me int, h, out *tensor.Matrix, from, to int) {
	lp := c.local[me]
	for i := from; i < to; i++ {
		u := lp.rows[i]
		fu := c.coeff[u]
		orow := out.Row(int(u))
		tensor.AXPY(fu*fu, h.Row(int(u)), orow)
		for _, v := range c.g.Neighbors(u) {
			if c.part[v] == me {
				tensor.AXPY(fu*c.coeff[v], h.Row(int(v)), orow)
			}
		}
	}
}

// localPhase computes the within-partition part of Â·h for all rows worker
// me owns (benchmark and test entry point; rounds call localRows in the
// boundary-first split).
func (c *Cluster) localPhase(me int, h, out *tensor.Matrix) {
	c.localRows(me, h, out, 0, len(c.local[me].rows))
}

// sendPhase encodes worker me's outgoing halo for this round and delivers
// one batch (possibly empty) to every peer's inbox. Batches reuse the
// buffers of two rounds ago; the barrier guarantees the receiver is done
// with them.
func (c *Cluster) sendPhase(me int, h *tensor.Matrix, backward bool) {
	for peer := 0; peer < c.nparts; peer++ {
		if peer == me {
			continue
		}
		c.inbox[peer] <- c.encodePeer(me, peer, h, backward)
	}
}

// encodePeer encodes worker me's outgoing halo for one peer into the
// retained batch buffer, records the traffic on me's shard counter, and
// returns the framed bytes. The buffer is reused next round: receivers must
// fully consume it before then (in-process the round barrier guarantees
// this; the multi-process transport copies it onto the socket immediately).
func (c *Cluster) encodePeer(me, peer int, h *tensor.Matrix, backward bool) []byte {
	batch := &c.ws[me].batches[peer]
	batch.Reset()
	if c.semantic {
		c.encodeSemantic(batch, me, peer, h, backward)
	} else {
		c.encodeVanilla(batch, me, peer, h, backward)
	}
	buf := batch.Bytes()
	// Wire framing is already inside buf (each message carries its own
	// header), so record pre-framed bytes rather than ShardCounter.Send.
	c.counters[me].Add(me, peer, int64(len(buf)), int64(batch.Len()))
	return buf
}

// addMsg appends a message to the batch — quantized when configured, with
// residual error feedback layered on top when enabled. pairIdx is the
// structural ordered-pair index the message rides and unit its candidate
// index within (pair, round); together with the round slot they key the
// residual store exactly like the analytic engine's RoundUnitKey scheme.
func (c *Cluster) addMsg(me int, batch *wire.Batch, m *wire.Message, pairIdx int, unit int64) {
	ps := c.pairAt(pairIdx)
	bits := c.quantBits
	var ef *compress.ErrorFeedback
	var aq *compress.AdaptiveQuantizer
	if ps != nil {
		ef, aq = ps.ef, ps.adaptive
		if c.schedule != nil {
			// Under variable-rate scheduling the width is the pair's rung,
			// not the global configuration (and 0 means this rung ships raw).
			bits = ps.bits
		}
	}
	if bits <= 0 {
		batch.Add(m)
		return
	}
	if ef == nil {
		if aq != nil {
			batch.AddAdaptive(m, aq.ChooseBits(m.Payload))
		} else {
			batch.AddQuantized(m, bits)
		}
		return
	}
	ws := &c.ws[me]
	key := compress.RoundUnitKey(c.round, unit)
	ef.PreCompress(key, m.Payload)
	trueVals := append(ws.efTrue[:0], m.Payload...)
	ws.efTrue = trueVals
	sent := ws.efSent[:len(m.Payload)]
	if aq != nil {
		// Width is chosen on the residual-corrected payload — the values the
		// engine's Roundtrip sees after its own PreCompress.
		batch.AddAdaptiveRoundtrip(m, aq.ChooseBits(m.Payload), sent)
	} else {
		batch.AddQuantizedRoundtrip(m, bits, sent)
	}
	ef.PostCompress(key, trueVals, sent)
}

// encodeVanilla emits one KindNode message per cross edge (Fig. 7(a)).
func (c *Cluster) encodeVanilla(batch *wire.Batch, me, peer int, h *tensor.Matrix, backward bool) {
	// Forward: my arcs me→peer carry f[u]h_u addressed to v.
	// Backward: arcs peer→me reverse — I own the sinks v and send f[v]h_v
	// addressed to u.
	var idx int
	if backward {
		idx = peer*c.nparts + me
	} else {
		idx = me*c.nparts + peer
	}
	edges := c.crossOut[idx]
	if len(edges) == 0 {
		return
	}
	ws := &c.ws[me]
	payload := ws.payload[:h.Cols]
	msg := &ws.msg
	msg.Kind = wire.KindNode
	msg.SrcPart = int32(me)
	msg.Payload = payload
	var sampler *compress.Sampler
	var nodeSampler *compress.NodeSampler
	if ps := c.pairAt(idx); ps != nil {
		sampler, nodeSampler = ps.sampler, ps.nodeSampler
	}
	if nodeSampler != nil {
		nodeSampler.StartRound()
	}
	var unit int64
	for _, e := range edges {
		sender, receiver := e.U, e.V
		if backward {
			sender, receiver = e.V, e.U
		}
		scale := c.coeff[sender]
		switch {
		case sampler != nil:
			if !sampler.Keep() {
				unit++
				continue
			}
			scale *= sampler.Scale()
		case nodeSampler != nil:
			if !nodeSampler.Keep(sender) {
				unit++
				continue
			}
			scale *= nodeSampler.Scale()
		}
		src := h.Row(int(sender))
		for i, v := range src {
			payload[i] = scale * v
		}
		msg.Target = receiver
		c.addMsg(me, batch, msg, idx, unit)
		unit++
	}
}

// encodeSemantic emits one KindGroup message per group plus KindNode
// messages for O2O residuals (Fig. 7(b)), running the compiled gather
// lists of pair idx's EncodePlan: each group fuse is one fused
// GatherAXPY over pre-flattened member rows with WOut·coeff baked, each
// O2O residual a scaled row copy with coeff[sender] baked. Unit
// ordering (groups first, then O2O, dropped units still advancing the
// counter) matches the reference path coin for coin.
func (c *Cluster) encodeSemantic(batch *wire.Batch, me, peer int, h *tensor.Matrix, backward bool) {
	if c.useReference {
		c.encodeSemanticReference(batch, me, peer, h, backward)
		return
	}
	// Forward: plan(me→peer), fuse over SrcNodes.
	// Backward: plan(peer→me) reversed — I own its DstNodes and fuse them.
	var idx int
	if backward {
		idx = peer*c.nparts + me
	} else {
		idx = me*c.nparts + peer
	}
	if c.plans[idx] == nil {
		return
	}
	ep := c.kernels[idx].encF
	if backward {
		ep = c.kernels[idx].encB
	}
	ws := &c.ws[me]
	payload := ws.payload[:h.Cols]
	msg := &ws.msg
	msg.SrcPart = int32(me)
	msg.Payload = payload
	var sampler *compress.Sampler
	var nodeSampler *compress.NodeSampler
	if ps := c.pairAt(idx); ps != nil {
		sampler, nodeSampler = ps.sampler, ps.nodeSampler
	}
	if nodeSampler != nil {
		nodeSampler.StartRound()
	}
	var unit int64
	for gi := 0; gi < ep.NumGroups(); gi++ {
		scale := 1.0
		switch {
		case sampler != nil:
			if !sampler.Keep() {
				unit++
				continue
			}
			scale = sampler.Scale()
		case nodeSampler != nil:
			if !nodeSampler.Keep(groupCoinKey(gi)) {
				unit++
				continue
			}
			scale = nodeSampler.Scale()
		}
		for i := range payload {
			payload[i] = 0
		}
		rows, w := ep.Group(gi)
		tensor.GatherAXPY(payload, h, rows, w, scale)
		msg.Kind = wire.KindGroup
		msg.Target = int32(gi)
		c.addMsg(me, batch, msg, idx, unit)
		unit++
	}
	msg.Kind = wire.KindNode
	for k, src := range ep.O2OSrc {
		scale := ep.O2OW[k]
		switch {
		case sampler != nil:
			if !sampler.Keep() {
				unit++
				continue
			}
			scale *= sampler.Scale()
		case nodeSampler != nil:
			if !nodeSampler.Keep(src) {
				unit++
				continue
			}
			scale *= nodeSampler.Scale()
		}
		row := h.Row(int(src))
		for i, v := range row {
			payload[i] = scale * v
		}
		msg.Target = ep.O2ODst[k]
		c.addMsg(me, batch, msg, idx, unit)
		unit++
	}
}

// encodeSemanticReference is the pre-kernel semantic encoder, retained
// as the bit-identity oracle for encodeSemantic (same wire bytes, same
// RNG consumption).
func (c *Cluster) encodeSemanticReference(batch *wire.Batch, me, peer int, h *tensor.Matrix, backward bool) {
	var idx int
	if backward {
		idx = peer*c.nparts + me
	} else {
		idx = me*c.nparts + peer
	}
	plan := c.plans[idx]
	if plan == nil {
		return
	}
	groups := plan.Groups
	if backward {
		groups = c.revGroups[idx]
	}
	ws := &c.ws[me]
	payload := ws.payload[:h.Cols]
	msg := &ws.msg
	msg.SrcPart = int32(me)
	msg.Payload = payload
	var sampler *compress.Sampler
	var nodeSampler *compress.NodeSampler
	if ps := c.pairAt(idx); ps != nil {
		sampler, nodeSampler = ps.sampler, ps.nodeSampler
	}
	if nodeSampler != nil {
		nodeSampler.StartRound()
	}
	var unit int64
	for gi, grp := range groups {
		scale := 1.0
		switch {
		case sampler != nil:
			if !sampler.Keep() {
				unit++
				continue
			}
			scale = sampler.Scale()
		case nodeSampler != nil:
			// Under node-granularity sampling a group is the transfer unit:
			// one coin per (pair, group) per round, keyed in the negative key
			// space so it can never collide with the boundary-node coins of
			// the O2O path below.
			if !nodeSampler.Keep(groupCoinKey(gi)) {
				unit++
				continue
			}
			scale = nodeSampler.Scale()
		}
		// Fuse into the retained scratch (pre-sized once per round, zeroed
		// per group) instead of a fresh hg slice per group.
		for i := range payload {
			payload[i] = 0
		}
		for k, u := range grp.SrcNodes {
			tensor.AXPY(grp.WOut[k]*c.coeff[u]*scale, h.Row(int(u)), payload)
		}
		msg.Kind = wire.KindGroup
		msg.Target = int32(gi)
		c.addMsg(me, batch, msg, idx, unit)
		unit++
	}
	msg.Kind = wire.KindNode
	for _, o := range plan.O2O {
		sender, receiver := o.Src, o.Dst
		if backward {
			sender, receiver = o.Dst, o.Src
		}
		scale := c.coeff[sender]
		switch {
		case sampler != nil:
			if !sampler.Keep() {
				unit++
				continue
			}
			scale *= sampler.Scale()
		case nodeSampler != nil:
			if !nodeSampler.Keep(sender) {
				unit++
				continue
			}
			scale *= nodeSampler.Scale()
		}
		src := h.Row(int(sender))
		for i, v := range src {
			payload[i] = scale * v
		}
		msg.Target = receiver
		c.addMsg(me, batch, msg, idx, unit)
		unit++
	}
}

// receivePhase stream-decodes the nparts-1 batches addressed to worker me
// and accumulates their contributions into the rows me owns. On a decode
// error it keeps draining its inbox (so the round protocol stays balanced)
// and reports the first error through the barrier.
func (c *Cluster) receivePhase(me int, backward bool, out *tensor.Matrix) error {
	var firstErr error
	for k := 0; k < c.nparts-1; k++ {
		buf := <-c.inbox[me]
		if firstErr != nil {
			continue
		}
		if err := c.decodeBatch(me, backward, out, buf); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// decodeBatch walks one inbound buffer with the streaming decoder: node
// payloads are decoded directly into an AXPY against the destination row;
// group payloads are staged once in the retained scratch and fanned out.
func (c *Cluster) decodeBatch(me int, backward bool, out *tensor.Matrix, buf []byte) error {
	dim := out.Cols
	dec := wire.NewDecoder(buf)
	scratch := c.ws[me].dec[:dim]
	for dec.More() {
		hd, err := dec.Next()
		if err != nil {
			return fmt.Errorf("worker %d: corrupt batch: %w", me, err)
		}
		if hd.N != dim {
			return fmt.Errorf("worker %d: corrupt batch: payload %d values, want %d", me, hd.N, dim)
		}
		switch hd.Kind {
		case wire.KindNode:
			v := hd.Target
			if v < 0 || int(v) >= len(c.part) {
				return fmt.Errorf("worker %d: corrupt batch: node %d out of range", me, v)
			}
			if c.part[v] != me {
				return fmt.Errorf("worker %d: received node %d owned by %d", me, v, c.part[v])
			}
			if err := dec.AXPY(c.coeff[v], out.Row(int(v))); err != nil {
				return fmt.Errorf("worker %d: %w", me, err)
			}
		case wire.KindGroup:
			if c.useReference {
				grp, err := c.groupFor(int(hd.SrcPart), me, int(hd.Target), backward)
				if err != nil {
					return fmt.Errorf("worker %d: corrupt batch: %w", me, err)
				}
				if err := dec.Read(scratch); err != nil {
					return fmt.Errorf("worker %d: %w", me, err)
				}
				for k, v := range grp.DstNodes {
					tensor.AXPY(grp.DDst[k]*c.coeff[v], scratch, out.Row(int(v)))
				}
				continue
			}
			rows, w, err := c.deliverFor(int(hd.SrcPart), me, int(hd.Target), backward)
			if err != nil {
				return fmt.Errorf("worker %d: corrupt batch: %w", me, err)
			}
			if err := dec.Read(scratch); err != nil {
				return fmt.Errorf("worker %d: %w", me, err)
			}
			tensor.ScatterAXPY(out, rows, w, scratch, 1)
		}
	}
	return nil
}

// deliverFor resolves a received group reference against the compiled
// deliver plans: forward groups ride the (from→me) pair's kernels,
// backward groups the reversed (me→from) pair's. Out-of-range references
// (possible only on corrupt wire data) are errors, not panics — the same
// validation groupFor applies on the reference path.
func (c *Cluster) deliverFor(from, me, gi int, backward bool) (rows []int32, w []float64, err error) {
	if from < 0 || from >= c.nparts || from == me {
		return nil, nil, fmt.Errorf("group message from invalid part %d", from)
	}
	var dp *core.DeliverPlan
	if c.kernels != nil {
		if backward {
			dp = c.kernels[me*c.nparts+from].delB
		} else {
			dp = c.kernels[from*c.nparts+me].delF
		}
	}
	n := 0
	if dp != nil {
		n = dp.NumGroups()
	}
	if gi < 0 || gi >= n {
		return nil, nil, fmt.Errorf("group index %d out of range (pair has %d groups)", gi, n)
	}
	rows, w = dp.Group(gi)
	return rows, w, nil
}

// groupFor resolves a received group reference: forward groups live in the
// (from→me) plan; backward groups are the reversed (me→from) plan groups.
// Out-of-range references (possible only on corrupt wire data) are errors,
// not panics.
func (c *Cluster) groupFor(from, me, gi int, backward bool) (*core.Group, error) {
	if from < 0 || from >= c.nparts || from == me {
		return nil, fmt.Errorf("group message from invalid part %d", from)
	}
	var groups []*core.Group
	if backward {
		groups = c.revGroups[me*c.nparts+from]
	} else {
		if plan := c.plans[from*c.nparts+me]; plan != nil {
			groups = plan.Groups
		}
	}
	if gi < 0 || gi >= len(groups) {
		return nil, fmt.Errorf("group index %d out of range (pair has %d groups)", gi, len(groups))
	}
	return groups[gi], nil
}
