// Package worker is the concurrent distributed runtime of the reproduction:
// P goroutine workers, one per partition, that exchange *real* serialized
// messages (internal/wire) over channels during every aggregate round —
// the closest laptop-scale analogue of the paper's multi-GPU deployment.
//
// It complements internal/dist: the sequential engine supports every method
// and accounts traffic analytically; the worker cluster executes the two
// paths that matter most — vanilla per-edge exchange and SC-GNN semantic
// compression — with actual concurrency, actual fp32 wire encoding, and
// bytes measured off the encoded buffers. Tests assert that the cluster's
// aggregates match the sequential engine to fp32 precision and that its
// measured bytes equal the engine's analytic accounting exactly.
package worker

import (
	"fmt"
	"sync"

	"scgnn/internal/compress"
	"scgnn/internal/core"
	"scgnn/internal/graph"
	"scgnn/internal/simnet"
	"scgnn/internal/tensor"
	"scgnn/internal/wire"
)

// Cluster is a set of goroutine workers jointly computing the partitioned
// GCN aggregate Â·h. It implements gnn.Aggregator, so models train on it
// unchanged.
type Cluster struct {
	g      *graph.Graph
	part   []int
	nparts int
	coeff  []float64

	semantic  bool
	plans     []*core.PairPlan // index s*nparts+t; nil when no cross edges
	revGroups [][]*core.Group

	// crossOut[s*nparts+t] lists arcs u→v with part[u]=s, part[v]=t.
	crossOut [][]graph.Edge
	// own[p] lists the nodes owned by worker p.
	own [][]int32

	// quantBits > 0 quantizes every payload before encoding (per-worker
	// quantizers avoid contention); bytes reflect the reduced wire size:
	// ceil(n·bits/8) + 8 metadata in place of 4n.
	quantBits int

	// Traffic accounting mirrors the engine's shard-and-merge scheme instead
	// of hot-loop atomics: each worker records its sends on its own
	// ShardCounter (no cross-core contention during the round) and the
	// counters are merged into the fabric after the round barrier, in worker
	// order, so per-link totals are exact and schedule-free.
	trafficMu sync.Mutex
	fabric    *simnet.Fabric
	counters  []*simnet.ShardCounter // one per worker
}

// SetQuantization enables b-bit payload quantization on the wire (0
// disables). Call before training starts.
func (c *Cluster) SetQuantization(bits int) {
	if bits != 0 {
		compress.NewQuantizer(bits) // validate range, panics on bad input
	}
	c.quantBits = bits
}

// NewCluster builds the worker runtime. When semantic is true, planCfg
// drives grouping; otherwise the vanilla per-edge exchange is used.
func NewCluster(g *graph.Graph, part []int, nparts int, semantic bool, planCfg core.PlanConfig) *Cluster {
	if len(part) != g.NumNodes() {
		panic(fmt.Sprintf("worker: partition len %d, want %d", len(part), g.NumNodes()))
	}
	c := &Cluster{
		g:        g,
		part:     part,
		nparts:   nparts,
		coeff:    g.SymNormCoeffs(),
		semantic: semantic,
		crossOut: make([][]graph.Edge, nparts*nparts),
		own:      make([][]int32, nparts),
		fabric:   simnet.NewFabric(nparts),
		counters: make([]*simnet.ShardCounter, nparts),
	}
	for p := range c.counters {
		c.counters[p] = simnet.NewShardCounter(nparts)
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		s := part[u]
		c.own[s] = append(c.own[s], u)
		for _, v := range g.Neighbors(u) {
			if t := part[v]; t != s {
				c.crossOut[s*nparts+t] = append(c.crossOut[s*nparts+t], graph.Edge{U: u, V: v})
			}
		}
	}
	if semantic {
		c.plans = make([]*core.PairPlan, nparts*nparts)
		c.revGroups = make([][]*core.Group, nparts*nparts)
		for _, p := range core.BuildAllPlans(g, part, nparts, planCfg) {
			idx := p.SrcPart*nparts + p.DstPart
			c.plans[idx] = p
			rev := make([]*core.Group, len(p.Groups))
			for i, grp := range p.Groups {
				rev[i] = grp.Reverse()
			}
			c.revGroups[idx] = rev
		}
	}
	return c
}

// ResetTraffic clears the byte/message counters.
func (c *Cluster) ResetTraffic() {
	c.trafficMu.Lock()
	defer c.trafficMu.Unlock()
	c.fabric.Reset()
}

// Traffic returns the real encoded bytes and message count since the last
// reset.
func (c *Cluster) Traffic() (bytes, msgs int64) {
	c.trafficMu.Lock()
	defer c.trafficMu.Unlock()
	return c.fabric.TotalBytes(), c.fabric.TotalMessages()
}

// Snapshot freezes the per-link traffic accumulated since the last reset
// (same shape the analytic engine reports), for cost-model consumers.
func (c *Cluster) Snapshot() simnet.Snapshot {
	c.trafficMu.Lock()
	defer c.trafficMu.Unlock()
	return c.fabric.Capture()
}

// Forward implements gnn.Aggregator with a concurrent halo exchange.
func (c *Cluster) Forward(h *tensor.Matrix) *tensor.Matrix { return c.aggregate(h, false) }

// Backward implements gnn.Aggregator; gradients flow along transposed edges.
func (c *Cluster) Backward(g *tensor.Matrix) *tensor.Matrix { return c.aggregate(g, true) }

// aggregate runs one concurrent round: every worker computes its local
// aggregate, encodes its outgoing halo as wire batches, exchanges them over
// channels, and accumulates the decoded remote contributions into the rows
// it owns.
func (c *Cluster) aggregate(h *tensor.Matrix, backward bool) *tensor.Matrix {
	n := c.g.NumNodes()
	if h.Rows != n {
		panic(fmt.Sprintf("worker: matrix rows %d, graph nodes %d", h.Rows, n))
	}
	out := tensor.New(n, h.Cols)

	// inbox[t] receives exactly nparts-1 batches (one per peer, possibly
	// empty) each round.
	inbox := make([]chan []byte, c.nparts)
	for t := range inbox {
		inbox[t] = make(chan []byte, c.nparts)
	}

	var wg sync.WaitGroup
	wg.Add(c.nparts)
	for p := 0; p < c.nparts; p++ {
		go func(me int) {
			defer wg.Done()
			c.localPhase(me, h, out)
			c.sendPhase(me, h, backward, inbox)
			c.receivePhase(me, backward, out, inbox[me])
		}(p)
	}
	wg.Wait()
	// Merge each worker's round traffic into the fabric after the barrier,
	// in worker order — totals are independent of goroutine scheduling.
	c.trafficMu.Lock()
	for _, sc := range c.counters {
		c.fabric.Merge(sc)
		sc.Reset()
	}
	c.trafficMu.Unlock()
	return out
}

// localPhase computes the within-partition part of Â·h for the rows worker
// me owns.
func (c *Cluster) localPhase(me int, h, out *tensor.Matrix) {
	for _, u := range c.own[me] {
		fu := c.coeff[u]
		orow := out.Row(int(u))
		tensor.AXPY(fu*fu, h.Row(int(u)), orow)
		for _, v := range c.g.Neighbors(u) {
			if c.part[v] == me {
				tensor.AXPY(fu*c.coeff[v], h.Row(int(v)), orow)
			}
		}
	}
}

// sendPhase encodes worker me's outgoing halo for this round and delivers
// one batch (possibly empty) to every peer's inbox.
func (c *Cluster) sendPhase(me int, h *tensor.Matrix, backward bool, inbox []chan []byte) {
	dim := h.Cols
	for peer := 0; peer < c.nparts; peer++ {
		if peer == me {
			continue
		}
		var batch wire.Batch
		if c.semantic {
			c.encodeSemantic(&batch, me, peer, h, backward)
		} else {
			c.encodeVanilla(&batch, me, peer, h, backward, dim)
		}
		buf := batch.Bytes()
		// Wire framing is already inside buf (each message carries its own
		// header), so record pre-framed bytes rather than ShardCounter.Send.
		c.counters[me].Add(me, peer, int64(len(buf)), int64(batch.Len()))
		inbox[peer] <- buf
	}
}

// addMsg appends a message to the batch, quantized when configured.
func (c *Cluster) addMsg(batch *wire.Batch, m *wire.Message) {
	if c.quantBits > 0 {
		batch.AddQuantized(m, c.quantBits)
	} else {
		batch.Add(m)
	}
}

// encodeVanilla emits one KindNode message per cross edge (Fig. 7(a)).
func (c *Cluster) encodeVanilla(batch *wire.Batch, me, peer int, h *tensor.Matrix, backward bool, dim int) {
	// Forward: my arcs me→peer carry f[u]h_u addressed to v.
	// Backward: arcs peer→me reverse — I own the sinks v and send f[v]h_v
	// addressed to u.
	var edges []graph.Edge
	if backward {
		edges = c.crossOut[peer*c.nparts+me]
	} else {
		edges = c.crossOut[me*c.nparts+peer]
	}
	payload := make([]float64, dim)
	for _, e := range edges {
		sender, receiver := e.U, e.V
		if backward {
			sender, receiver = e.V, e.U
		}
		src := h.Row(int(sender))
		fs := c.coeff[sender]
		for i, v := range src {
			payload[i] = fs * v
		}
		c.addMsg(batch, &wire.Message{
			Kind:    wire.KindNode,
			SrcPart: int32(me),
			Target:  receiver,
			Payload: payload,
		})
	}
}

// encodeSemantic emits one KindGroup message per live group plus KindNode
// messages for O2O residuals (Fig. 7(b)).
func (c *Cluster) encodeSemantic(batch *wire.Batch, me, peer int, h *tensor.Matrix, backward bool) {
	// Forward: plan(me→peer), fuse over SrcNodes.
	// Backward: plan(peer→me) reversed — I own its DstNodes and fuse them.
	var plan *core.PairPlan
	var groups []*core.Group
	if backward {
		idx := peer*c.nparts + me
		plan = c.plans[idx]
		if plan != nil {
			groups = c.revGroups[idx]
		}
	} else {
		idx := me*c.nparts + peer
		plan = c.plans[idx]
		if plan != nil {
			groups = plan.Groups
		}
	}
	if plan == nil {
		return
	}
	dim := h.Cols
	for gi, grp := range groups {
		hg := make([]float64, dim)
		for k, u := range grp.SrcNodes {
			tensor.AXPY(grp.WOut[k]*c.coeff[u], h.Row(int(u)), hg)
		}
		c.addMsg(batch, &wire.Message{
			Kind:    wire.KindGroup,
			SrcPart: int32(me),
			Target:  int32(gi),
			Payload: hg,
		})
	}
	payload := make([]float64, dim)
	for _, o := range plan.O2O {
		sender, receiver := o.Src, o.Dst
		if backward {
			sender, receiver = o.Dst, o.Src
		}
		src := h.Row(int(sender))
		fs := c.coeff[sender]
		for i, v := range src {
			payload[i] = fs * v
		}
		c.addMsg(batch, &wire.Message{
			Kind:    wire.KindNode,
			SrcPart: int32(me),
			Target:  receiver,
			Payload: payload,
		})
	}
}

// receivePhase decodes the nparts-1 batches addressed to worker me and
// accumulates their contributions into the rows me owns.
func (c *Cluster) receivePhase(me int, backward bool, out *tensor.Matrix, inbox <-chan []byte) {
	for k := 0; k < c.nparts-1; k++ {
		buf := <-inbox
		msgs, err := wire.DecodeAll(buf)
		if err != nil {
			panic(fmt.Sprintf("worker %d: corrupt batch: %v", me, err))
		}
		for _, m := range msgs {
			switch m.Kind {
			case wire.KindNode:
				v := m.Target
				if c.part[v] != me {
					panic(fmt.Sprintf("worker %d: received node %d owned by %d", me, v, c.part[v]))
				}
				tensor.AXPY(c.coeff[v], m.Payload, out.Row(int(v)))
			case wire.KindGroup:
				grp := c.groupFor(int(m.SrcPart), me, int(m.Target), backward)
				for k2, v := range grp.DstNodes {
					tensor.AXPY(grp.DDst[k2]*c.coeff[v], m.Payload, out.Row(int(v)))
				}
			}
		}
	}
}

// groupFor resolves a received group reference: forward groups live in the
// (from→me) plan; backward groups are the reversed (me→from) plan groups.
func (c *Cluster) groupFor(from, me, gi int, backward bool) *core.Group {
	if backward {
		return c.revGroups[me*c.nparts+from][gi]
	}
	return c.plans[from*c.nparts+me].Groups[gi]
}
