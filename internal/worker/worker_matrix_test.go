package worker

import (
	"math/rand"
	"testing"

	"scgnn/internal/core"
	"scgnn/internal/datasets"
	"scgnn/internal/dist"
	"scgnn/internal/gnn"
	"scgnn/internal/partition"
)

// TestClusterEngineEquivalenceMatrix is the cross-engine lockdown of the
// full Fig. 12(b) method coverage: for every one of the 13 method
// combinations, the concurrent worker cluster must match the analytic engine
// at each of its schedules (Workers 1 sequential, 4 receiver-sharded, 64
// row-sharded) — aggregates to fp32 wire precision, per-epoch traffic
// snapshots exactly — across five epochs of forward+backward rounds, so
// per-pair RNG streams, adaptive width choices, delay replays, and
// error-feedback residuals all stay in lockstep.
func TestClusterEngineEquivalenceMatrix(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	h := randMat(d.NumNodes(), 5, 77)
	g := randMat(d.NumNodes(), 5, 78)

	for name, cfg := range dist.MethodMatrix(9) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cl := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer cl.Close()
			// A second cluster pinned to the retained pre-kernel phase
			// implementations: the compiled hot path must not drift from the
			// reference under any method combination. (Byte-exact lockstep
			// incl. Repartition lives in TestKernelReferenceLockstep; here
			// the reference rides the full engine matrix at wire tolerance.)
			ref := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer ref.Close()
			ref.useReference = true
			workerCounts := []int{1, 4, 64}
			engs := make([]*dist.Engine, len(workerCounts))
			for i, w := range workerCounts {
				ec := cfg
				ec.Workers = w
				engs[i] = dist.NewEngine(d.Graph, part, nparts, ec)
			}
			for epoch := 0; epoch < 5; epoch++ {
				cl.ResetTraffic()
				cl.StartEpoch(epoch)
				gotF := cl.Forward(h)
				gotB := cl.Backward(g)
				snap := cl.Snapshot()
				ref.ResetTraffic()
				ref.StartEpoch(epoch)
				refF := ref.Forward(h)
				refB := ref.Backward(g)
				// Inbox arrival order may reassociate fp64 row sums between
				// two cluster runs at nparts=3 — fp64 reordering tolerance;
				// traffic must match exactly.
				if !gotF.Equal(refF, 1e-9*(1+refF.MaxAbs())) {
					t.Fatalf("epoch %d: kernel forward diverged from reference phases", epoch)
				}
				if !gotB.Equal(refB, 1e-9*(1+refB.MaxAbs())) {
					t.Fatalf("epoch %d: kernel backward diverged from reference phases", epoch)
				}
				if rs := ref.Snapshot(); snap != rs {
					t.Fatalf("epoch %d: kernel traffic %+v vs reference %+v", epoch, snap, rs)
				}
				for i, eng := range engs {
					w := workerCounts[i]
					eng.StartEpoch(epoch)
					wantF := eng.Forward(h)
					wantB := eng.Backward(g)
					// Values to fp32 tolerance: the wire ships fp32
					// payloads/metadata, the engine computes in float64.
					if tol := 1e-3 * (1 + wantF.MaxAbs()); !gotF.Equal(wantF, tol) {
						t.Fatalf("epoch %d workers %d: forward diverged from engine", epoch, w)
					}
					if tol := 1e-3 * (1 + wantB.MaxAbs()); !gotB.Equal(wantB, tol) {
						t.Fatalf("epoch %d workers %d: backward diverged from engine", epoch, w)
					}
					// Traffic exactly: measured wire bytes = analytic bytes,
					// per epoch, including zero-byte delay replays.
					es := eng.CaptureEpoch()
					if snap.TotalBytes != es.TotalBytes || snap.TotalMessages != es.TotalMessages ||
						snap.MaxInboundBytes != es.MaxInboundBytes || snap.MaxInboundMessages != es.MaxInboundMessages ||
						snap.MaxOutboundBytes != es.MaxOutboundBytes || snap.MaxOutboundMessages != es.MaxOutboundMessages {
						t.Fatalf("epoch %d workers %d: wire traffic %+v vs engine %+v",
							epoch, w, snap, es)
					}
				}
			}
		})
	}
}

// TestClusterStartEvalEpochBypassesDelay mirrors the engine's eval-bypass
// contract on the wire runtime: a StartEvalEpoch pass under delayed
// transmission computes fresh remote contributions (paying their traffic)
// and neither reads nor writes the delay cache, so resumed training replays
// exactly what it would have without the eval pass.
func TestClusterStartEvalEpochBypassesDelay(t *testing.T) {
	d, part := setup(t, 3)
	h0 := randMat(d.NumNodes(), 4, 21)
	h1 := randMat(d.NumNodes(), 4, 22)

	delayed := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	delayed.SetDelay(2)
	defer delayed.Close()
	vanilla := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	defer vanilla.Close()

	delayed.StartEpoch(0) // fresh epoch: caches h0's remote contribution
	delayed.Forward(h0)

	// Epoch 1 is a replay epoch (1 % 2 != 0): a training pass would reuse
	// h0's stale remote rows. The eval pass must see h1 everywhere and must
	// exchange real bytes to do it.
	delayed.ResetTraffic()
	delayed.StartEvalEpoch(1)
	got := delayed.Forward(h1)
	if bytes, _ := delayed.Traffic(); bytes == 0 {
		t.Fatal("eval pass under delay produced no wire traffic")
	}
	vanilla.StartEpoch(1)
	want := vanilla.Forward(h1)
	// Both sides run the same wire encode/decode; only inbox arrival order
	// may reassociate row sums — fp64 reordering tolerance.
	if !got.Equal(want, 1e-9) {
		t.Fatal("eval pass under delay != fresh vanilla exchange")
	}

	// Resumed training at epoch 1 still replays the *h0* cache with zero
	// traffic — the eval pass neither consumed nor overwrote it. The control
	// cluster runs the same schedule without the interleaved eval.
	control := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	control.SetDelay(2)
	defer control.Close()
	control.StartEpoch(0)
	control.Forward(h0)
	control.StartEpoch(1)
	wantReplay := control.Forward(h1)

	delayed.ResetTraffic()
	delayed.StartEpoch(1)
	replay := delayed.Forward(h1)
	if bytes, _ := delayed.Traffic(); bytes != 0 {
		t.Fatalf("replay epoch transmitted %d bytes", bytes)
	}
	if !replay.Equal(wantReplay, 1e-9) {
		t.Fatal("post-eval replay drifted from the undisturbed schedule")
	}
}

// TestClusterFinalEvalUsesActualNextEpoch is the worker-runtime mirror of
// the runner regression: with early stopping and delayed transmission, the
// final test accuracy must not depend on whether the *configured* epoch
// budget lands on a transmit epoch. gnn.Train marks the final pass through
// the EvalMarker interface with the actual next epoch; before that hook, the
// final forward silently reused the last training epoch's delay schedule.
// Two partitions make the wire runtime bit-deterministic (one inbound buffer
// per worker per round), so exact equality is required.
func TestClusterFinalEvalUsesActualNextEpoch(t *testing.T) {
	d := datasets.PubMedSim(3)
	part := partition.Partition(d.Graph, 2, partition.NodeCut, partition.Config{Seed: 4})

	var stop, epochs0 int
	var acc0 float64
	for i, budget := range []int{100, 101, 102, 103} {
		c := NewCluster(d.Graph, part, 2, false, core.PlanConfig{})
		c.SetDelay(3)
		rng := rand.New(rand.NewSource(2))
		model := gnn.NewGCN(c, []int{d.FeatureDim(), 32, d.NumClasses}, rng)
		r := gnn.Train(model, d.Features, d.Labels, d.TrainMask, d.ValMask, d.TestMask,
			gnn.TrainConfig{Epochs: budget, LR: 0.02, Patience: 5})
		c.Close()
		if len(r.Epochs) >= budget {
			t.Fatalf("early stopping did not trigger within budget %d", budget)
		}
		if i == 0 {
			stop, epochs0, acc0 = len(r.Epochs), budget, r.TestAcc
			continue
		}
		if len(r.Epochs) != stop {
			t.Fatalf("budgets %d and %d diverged before the final eval: %d vs %d epochs",
				epochs0, budget, stop, len(r.Epochs))
		}
		if r.TestAcc != acc0 {
			t.Fatalf("final accuracy depends on the configured epoch budget: %v (budget %d) vs %v (budget %d)",
				acc0, epochs0, r.TestAcc, budget)
		}
	}
}
