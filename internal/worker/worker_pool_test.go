package worker

import (
	"strings"
	"sync"
	"testing"

	"scgnn/internal/core"
	"scgnn/internal/datasets"
	"scgnn/internal/dist"
	"scgnn/internal/partition"
	"scgnn/internal/tensor"
)

func benchSetup() (*datasets.Dataset, []int) {
	d := datasets.PubMedSim(1)
	part := partition.Partition(d.Graph, 4, partition.NodeCut, partition.Config{Seed: 1})
	return d, part
}

// TestClusterSteadyStateAllocs: after warm-up, a full aggregate round over
// the persistent pool must not allocate — encode buffers, inboxes, payload
// scratch, and traffic shards are all retained across rounds.
func TestClusterSteadyStateAllocs(t *testing.T) {
	d, part := setup(t, 3)
	h := randMat(d.NumNodes(), 8, 21)
	out := tensor.New(d.NumNodes(), 8)
	cases := []struct {
		name     string
		semantic bool
		bits     int
		ef       bool
		rate     float64
		nodes    bool
		adaptive bool
		delay    int
	}{
		{name: "vanilla"},
		{name: "semantic", semantic: true},
		{name: "quant8", bits: 8},
		{name: "quant8+ef", bits: 8, ef: true},
		{name: "sampling", rate: 0.5},
		{name: "nsampling", rate: 0.5, nodes: true},
		{name: "aquant", bits: 8, adaptive: true},
		{name: "delay3", delay: 3},
		{name: "semantic+nsampling", semantic: true, rate: 0.5, nodes: true},
		{name: "semantic+delay", semantic: true, delay: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCluster(d.Graph, part, 3, tc.semantic, core.PlanConfig{Grouping: core.GroupingConfig{Seed: 5}})
			defer c.Close()
			if tc.bits > 0 {
				c.SetQuantization(tc.bits)
			}
			if tc.ef {
				c.SetErrorFeedback(true)
			}
			if tc.adaptive {
				c.SetAdaptiveQuant(true)
			}
			if tc.rate > 0 {
				c.SetSampling(tc.rate, tc.nodes, 7)
			}
			if tc.delay > 1 {
				c.SetDelay(tc.delay)
			}
			// Warm up both directions so scratch buffers, batch capacities,
			// the delay slots, and (for ef) the residual stores reach steady
			// state. Three epochs cover a full delay period, so both fresh
			// and replay rounds are measured below.
			for i := 0; i < 3; i++ {
				c.StartEpoch(i)
				if err := c.AggregateInto(out, h, false); err != nil {
					t.Fatal(err)
				}
				if err := c.AggregateInto(out, h, true); err != nil {
					t.Fatal(err)
				}
			}
			epoch := 3
			allocs := testing.AllocsPerRun(10, func() {
				c.StartEpoch(epoch)
				epoch++
				if err := c.AggregateInto(out, h, false); err != nil {
					t.Fatal(err)
				}
				if err := c.AggregateInto(out, h, true); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocates %v times", allocs)
			}
		})
	}
}

// TestClusterPersistentManyRounds drives one persistent cluster through 120
// forward/backward rounds while another goroutine hammers the traffic API
// (ResetTraffic / Snapshot / Traffic). Outputs must stay bit-identical to the
// first round's, and under -race this doubles as the pool's data-race proof.
func TestClusterPersistentManyRounds(t *testing.T) {
	d, part := setup(t, 3)
	c := NewCluster(d.Graph, part, 3, true, core.PlanConfig{Grouping: core.GroupingConfig{K: 2, Seed: 6}})
	defer c.Close()
	h := randMat(d.NumNodes(), 6, 22)
	refF := c.Forward(h)
	refB := c.Backward(h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				c.Snapshot()
			case 1:
				c.Traffic()
			default:
				c.ResetTraffic()
			}
		}
	}()

	outF := tensor.New(d.NumNodes(), 6)
	outB := tensor.New(d.NumNodes(), 6)
	for round := 0; round < 120; round++ {
		if err := c.AggregateInto(outF, h, false); err != nil {
			t.Fatal(err)
		}
		if err := c.AggregateInto(outB, h, true); err != nil {
			t.Fatal(err)
		}
		// Inbound batches are consumed in arrival order, so row sums may
		// reassociate across runs — fp64 reordering tolerance, like
		// TestClusterDeterministicUnderConcurrency.
		if !outF.Equal(refF, 1e-9) || !outB.Equal(refB, 1e-9) {
			t.Fatalf("round %d diverged from first round", round)
		}
	}
	close(stop)
	wg.Wait()

	// The pool must still be healthy for the traffic contract: a reset
	// followed by one round reproduces a single round's byte count.
	c.ResetTraffic()
	c.Forward(h)
	bytes, msgs := c.Traffic()
	if bytes <= 0 || msgs <= 0 {
		t.Fatalf("traffic after reset+round = (%d, %d)", bytes, msgs)
	}
}

// TestClusterCorruptBatchError: a corrupt inbound buffer must surface as an
// error from AggregateInto (not a process-killing panic in a worker
// goroutine), permanently poison the cluster, and panic recoverably from the
// gnn.Aggregator methods.
func TestClusterCorruptBatchError(t *testing.T) {
	d, _ := setup(t, 2)
	part := make([]int, d.NumNodes())
	for i := range part {
		part[i] = i % 2
	}
	c := NewCluster(d.Graph, part, 2, false, core.PlanConfig{})
	defer c.Close()
	h := randMat(d.NumNodes(), 4, 23)
	out := tensor.New(d.NumNodes(), 4)
	if err := c.AggregateInto(out, h, false); err != nil {
		t.Fatal(err)
	}

	// Worker 0 expects exactly one inbound buffer per round; pre-stuffing its
	// inbox makes the garbage arrive in place of worker 1's real batch.
	c.inbox[0] <- []byte{0xff, 0xee, 0xdd}
	err := c.AggregateInto(out, h, false)
	if err == nil {
		t.Fatal("corrupt batch did not error")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Poisoned: the same error comes back without running a round.
	if err2 := c.AggregateInto(out, h, false); err2 != err {
		t.Fatalf("cluster not poisoned: %v", err2)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Forward on poisoned cluster did not panic")
			}
		}()
		c.Forward(h)
	}()
}

// TestClusterCloseSemantics: Close is idempotent and rounds after Close fail
// cleanly.
func TestClusterCloseSemantics(t *testing.T) {
	d, part := setup(t, 3)
	c := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	h := randMat(d.NumNodes(), 4, 24)
	c.Forward(h)
	bytes, _ := c.Traffic()
	c.Close()
	c.Close()
	if b2, _ := c.Traffic(); b2 != bytes {
		t.Fatalf("traffic changed across Close: %d vs %d", b2, bytes)
	}
	if err := c.AggregateInto(tensor.New(d.NumNodes(), 4), h, false); err == nil {
		t.Fatal("AggregateInto after Close did not error")
	}
}

// TestClusterErrorFeedbackMatchesEngine: the worker runtime's quantized
// error-feedback path must track the analytic engine at matching bits — same
// residual keys, same unit enumeration, same round slots — up to the fp32
// metadata truncation of the wire format (the engine reconstructs from
// float64 lo/step, the wire from their fp32 truncations).
func TestClusterErrorFeedbackMatchesEngine(t *testing.T) {
	const bits = 4
	d, part := setup(t, 3)
	h := randMat(d.NumNodes(), 8, 25)
	plan := core.PlanConfig{Grouping: core.GroupingConfig{K: 2, Seed: 8}}
	for _, semantic := range []bool{false, true} {
		c := NewCluster(d.Graph, part, 3, semantic, plan)
		c.SetQuantization(bits)
		c.SetErrorFeedback(true)
		noEF := NewCluster(d.Graph, part, 3, semantic, plan)
		noEF.SetQuantization(bits)
		engCfg := dist.Config{QuantBits: bits, ErrorFeedback: true}
		if semantic {
			engCfg.Semantic = true
			engCfg.Plan = plan
		}
		eng := dist.NewEngine(d.Graph, part, 3, engCfg)

		var efDiverged bool
		for epoch := 0; epoch < 4; epoch++ {
			c.StartEpoch(epoch)
			noEF.StartEpoch(epoch)
			eng.StartEpoch(epoch)
			for _, backward := range []bool{false, true} {
				var got, gotNoEF, want *tensor.Matrix
				if backward {
					got, gotNoEF, want = c.Backward(h), noEF.Backward(h), eng.Backward(h)
				} else {
					got, gotNoEF, want = c.Forward(h), noEF.Forward(h), eng.Forward(h)
				}
				tol := 1e-3 * (1 + want.MaxAbs())
				if !got.Equal(want, tol) {
					t.Fatalf("semantic=%v epoch %d backward=%v: cluster EF != engine EF (maxdiff %v)",
						semantic, epoch, backward, tensor.Sub(got, want).MaxAbs())
				}
				if epoch > 0 && tensor.Sub(got, gotNoEF).MaxAbs() > 0 {
					efDiverged = true
				}
			}
		}
		if !efDiverged {
			t.Fatalf("semantic=%v: error feedback never changed the quantized aggregate", semantic)
		}
		c.Close()
		noEF.Close()
	}
}

// BenchmarkClusterRound*Into measure the allocation-free steady state of
// each wire path: a preallocated output and AggregateInto, the loop a
// training run's inner rounds actually execute.
func BenchmarkClusterRoundVanillaInto(b *testing.B) {
	benchInto(b, false, func(c *Cluster) {})
}

func BenchmarkClusterRoundSemanticInto(b *testing.B) {
	benchInto(b, true, func(c *Cluster) {})
}

func BenchmarkClusterRoundSampledInto(b *testing.B) {
	benchInto(b, false, func(c *Cluster) { c.SetSampling(0.5, true, 7) })
}

func BenchmarkClusterRoundAdaptiveInto(b *testing.B) {
	benchInto(b, false, func(c *Cluster) {
		c.SetQuantization(8)
		c.SetAdaptiveQuant(true)
	})
}

func BenchmarkClusterRoundDelayInto(b *testing.B) {
	// Period 2 with a fixed epoch alternates fresh and replay rounds —
	// the steady-state mix of a delayed-transmission training run.
	benchInto(b, false, func(c *Cluster) { c.SetDelay(2) })
}

func benchInto(b *testing.B, semantic bool, configure func(*Cluster)) {
	d, part := benchSetup()
	c := NewCluster(d.Graph, part, 4, semantic, core.PlanConfig{Grouping: core.GroupingConfig{Seed: 1}})
	defer c.Close()
	configure(c)
	h := randMat(d.NumNodes(), 16, 1)
	out := tensor.New(d.NumNodes(), 16)
	epoch := 0
	c.StartEpoch(epoch)
	if err := c.AggregateInto(out, h, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch++
		c.StartEpoch(epoch)
		if err := c.AggregateInto(out, h, false); err != nil {
			b.Fatal(err)
		}
	}
}
