package worker

import (
	"testing"

	"scgnn/internal/dist"
	"scgnn/internal/graph"
)

// movedPart deterministically moves every 7th node to the next partition,
// asserting the result still validates (all partitions occupied).
func movedPart(t *testing.T, n int, part []int, nparts int) []int {
	t.Helper()
	next := append([]int(nil), part...)
	for u := 0; u < len(next); u += 7 {
		next[u] = (next[u] + 1) % nparts
	}
	if err := graph.ValidatePartition(n, next, nparts); err != nil {
		t.Fatalf("perturbation produced an invalid partition: %v", err)
	}
	return next
}

// TestClusterEngineRepartitionLockstep extends the cross-engine equivalence
// matrix across a mid-training repartition: for every Fig. 12(b) method
// combination, engine and cluster run two epochs, Repartition onto the same
// perturbed partition (same dirty sets), and run two more — aggregates must
// stay within fp32 wire tolerance and traffic must match exactly throughout.
// This is the strongest check on the stateful methods (sampling, adaptive
// quantization, error feedback): their per-pair streams must survive on
// clean pairs and re-seed identically on dirty pairs in both runtimes.
func TestClusterEngineRepartitionLockstep(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	next := movedPart(t, d.NumNodes(), part, nparts)
	h := randMat(d.NumNodes(), 5, 81)
	g := randMat(d.NumNodes(), 5, 82)

	for name, cfg := range dist.MethodMatrix(9) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cl := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer cl.Close()
			// Reference-phase cluster rides the same schedule: compiled
			// plans must survive the repartition exactly like the retained
			// pre-kernel implementations (fp64 reordering tolerance only —
			// inbox arrival order differs between runs at nparts=3).
			ref := NewClusterFromConfig(d.Graph, part, nparts, cfg)
			defer ref.Close()
			ref.useReference = true
			eng := dist.NewEngine(d.Graph, part, nparts, cfg)

			compare := func(epoch int, stage string) {
				t.Helper()
				cl.ResetTraffic()
				cl.StartEpoch(epoch)
				gotF := cl.Forward(h)
				gotB := cl.Backward(g)
				snap := cl.Snapshot()
				ref.ResetTraffic()
				ref.StartEpoch(epoch)
				refF := ref.Forward(h)
				refB := ref.Backward(g)
				if !gotF.Equal(refF, 1e-9*(1+refF.MaxAbs())) {
					t.Fatalf("%s epoch %d: kernel forward diverged from reference phases", stage, epoch)
				}
				if !gotB.Equal(refB, 1e-9*(1+refB.MaxAbs())) {
					t.Fatalf("%s epoch %d: kernel backward diverged from reference phases", stage, epoch)
				}
				if rs := ref.Snapshot(); snap != rs {
					t.Fatalf("%s epoch %d: kernel traffic %+v vs reference %+v", stage, epoch, snap, rs)
				}
				eng.StartEpoch(epoch)
				wantF := eng.Forward(h)
				wantB := eng.Backward(g)
				if tol := 1e-3 * (1 + wantF.MaxAbs()); !gotF.Equal(wantF, tol) {
					t.Fatalf("%s epoch %d: forward diverged from engine", stage, epoch)
				}
				if tol := 1e-3 * (1 + wantB.MaxAbs()); !gotB.Equal(wantB, tol) {
					t.Fatalf("%s epoch %d: backward diverged from engine", stage, epoch)
				}
				if es := eng.CaptureEpoch(); snap.TotalBytes != es.TotalBytes ||
					snap.TotalMessages != es.TotalMessages {
					t.Fatalf("%s epoch %d: wire traffic %+v vs engine %+v", stage, epoch, snap, es)
				}
			}

			for epoch := 0; epoch < 2; epoch++ {
				compare(epoch, "pre-repartition")
			}
			dEng, err := eng.Repartition(next)
			if err != nil {
				t.Fatal(err)
			}
			dCl, err := cl.Repartition(next)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Repartition(next); err != nil {
				t.Fatal(err)
			}
			if len(dEng) != len(dCl) {
				t.Fatalf("dirty sets differ: engine %v vs cluster %v", dEng, dCl)
			}
			for i := range dEng {
				if dEng[i] != dCl[i] {
					t.Fatalf("dirty sets differ: engine %v vs cluster %v", dEng, dCl)
				}
			}
			if len(dEng) == 0 {
				t.Fatal("a real perturbation must dirty at least one pair")
			}
			for epoch := 2; epoch < 4; epoch++ {
				compare(epoch, "post-repartition")
			}
		})
	}
}

// TestClusterRepartitionHostileInput: the cluster rejects malformed
// partitions with an error and keeps serving rounds unchanged.
func TestClusterRepartitionHostileInput(t *testing.T) {
	d, part := setup(t, 3)
	const nparts = 3
	cl := NewClusterFromConfig(d.Graph, part, nparts, dist.Vanilla())
	defer cl.Close()
	h := randMat(d.NumNodes(), 5, 83)
	cl.StartEpoch(0)
	// Clone: the pooled cluster reuses its output buffer across rounds.
	before := cl.Forward(h).Clone()

	n := d.NumNodes()
	outOfRange := append([]int(nil), part...)
	outOfRange[0] = nparts
	empty := make([]int, n) // partitions 1 and 2 empty
	cases := []struct {
		name string
		part []int
	}{
		{"short vector", part[:n-1]},
		{"id out of range", outOfRange},
		{"empty partition", empty},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := cl.Repartition(c.part); err == nil {
				t.Fatal("Repartition accepted a malformed partition")
			}
			cl.StartEpoch(0)
			// 1e-9: channel arrival order can reorder the accumulation
			// (same bound as TestClusterDeterministicUnderConcurrency).
			if !cl.Forward(h).Equal(before, 1e-9) {
				t.Fatal("failed Repartition changed the cluster's aggregate")
			}
		})
	}
}
