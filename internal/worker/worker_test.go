package worker

import (
	"math"
	"math/rand"
	"testing"

	"scgnn/internal/core"
	"scgnn/internal/datasets"
	"scgnn/internal/dist"
	"scgnn/internal/gnn"
	"scgnn/internal/partition"
	"scgnn/internal/tensor"
)

func setup(t *testing.T, nparts int) (*datasets.Dataset, []int) {
	t.Helper()
	d := datasets.Generate(datasets.Spec{
		Name: "w", Nodes: 150, AvgDegree: 10, Classes: 3, FeatureDim: 5, Seed: 1,
	})
	part := partition.Partition(d.Graph, nparts, partition.NodeCut, partition.Config{Seed: 2})
	return d, part
}

func randMat(r, c int, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(r, c)
	for i := range m.Data {
		// Pre-truncate to fp32 so exact comparisons below are meaningful.
		m.Data[i] = float64(float32(rng.NormFloat64()))
	}
	return m
}

// TestVanillaClusterMatchesExact: the concurrent per-edge exchange must
// reproduce Â·h up to fp32 wire precision.
func TestVanillaClusterMatchesExact(t *testing.T) {
	d, part := setup(t, 3)
	c := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	local := gnn.NewLocalAggregator(d.Graph)
	h := randMat(d.NumNodes(), 5, 3)
	got := c.Forward(h)
	want := local.Forward(h)
	if !got.Equal(want, 1e-4) {
		t.Fatal("cluster forward != exact aggregate")
	}
	gotB := c.Backward(h)
	wantB := local.Backward(h)
	if !gotB.Equal(wantB, 1e-4) {
		t.Fatal("cluster backward != exact aggregate")
	}
}

// TestClusterBytesMatchEngineAccounting: the real encoded bytes must equal
// the sequential engine's analytic accounting exactly (same 16-byte header,
// same 4-byte values).
func TestClusterBytesMatchEngineAccounting(t *testing.T) {
	d, part := setup(t, 3)
	h := randMat(d.NumNodes(), 5, 4)
	for _, semantic := range []bool{false, true} {
		plan := core.PlanConfig{Grouping: core.GroupingConfig{K: 2, Seed: 7}}
		c := NewCluster(d.Graph, part, 3, semantic, plan)
		c.ResetTraffic()
		c.Forward(h)
		cb, cm := c.Traffic()

		var engCfg dist.Config
		if semantic {
			engCfg = dist.Semantic(plan)
		} else {
			engCfg = dist.Vanilla()
		}
		eng := dist.NewEngine(d.Graph, part, 3, engCfg)
		eng.StartEpoch(0)
		eng.Forward(h)
		snap := eng.CaptureEpoch()
		if cb != snap.TotalBytes || cm != snap.TotalMessages {
			t.Fatalf("semantic=%v: cluster %d B/%d msgs vs engine %d B/%d msgs",
				semantic, cb, cm, snap.TotalBytes, snap.TotalMessages)
		}
	}
}

// TestSemanticClusterMatchesEngine: the concurrent semantic aggregate must
// match the sequential engine's semantic aggregate to fp32 precision.
func TestSemanticClusterMatchesEngine(t *testing.T) {
	d, part := setup(t, 4)
	plan := core.PlanConfig{Grouping: core.GroupingConfig{K: 3, Seed: 9}}
	c := NewCluster(d.Graph, part, 4, true, plan)
	eng := dist.NewEngine(d.Graph, part, 4, dist.Semantic(plan))
	h := randMat(d.NumNodes(), 6, 5)

	got := c.Forward(h)
	eng.StartEpoch(0)
	want := eng.Forward(h)
	if !got.Equal(want, 1e-3*(1+want.MaxAbs())) {
		t.Fatal("cluster semantic forward != engine semantic forward")
	}

	gotB := c.Backward(h)
	wantB := eng.Backward(h)
	if !gotB.Equal(wantB, 1e-3*(1+wantB.MaxAbs())) {
		t.Fatal("cluster semantic backward != engine semantic backward")
	}
}

// TestClusterDeterministicUnderConcurrency: repeated rounds on the same
// input produce identical outputs regardless of goroutine scheduling
// (each worker writes only rows it owns; accumulation order within a row is
// fixed by the per-peer receive loop... which is NOT ordered — so we require
// results to be equal only up to fp64 summation reordering tolerance).
func TestClusterDeterministicUnderConcurrency(t *testing.T) {
	d, part := setup(t, 4)
	c := NewCluster(d.Graph, part, 4, false, core.PlanConfig{})
	h := randMat(d.NumNodes(), 4, 6)
	ref := c.Forward(h)
	for trial := 0; trial < 10; trial++ {
		got := c.Forward(h)
		if !got.Equal(ref, 1e-9) {
			t.Fatal("concurrent aggregate not reproducible")
		}
	}
}

// TestClusterTrainsGCN: end-to-end training over the goroutine runtime.
func TestClusterTrainsGCN(t *testing.T) {
	d := datasets.PubMedSim(5)
	part := partition.Partition(d.Graph, 4, partition.NodeCut, partition.Config{Seed: 3})
	plan := core.PlanConfig{Grouping: core.GroupingConfig{Seed: 4}}
	c := NewCluster(d.Graph, part, 4, true, plan)
	rng := rand.New(rand.NewSource(8))
	model := gnn.NewGCN(c, []int{d.FeatureDim(), 32, d.NumClasses}, rng)
	res := gnn.Train(model, d.Features, d.Labels, d.TrainMask, d.ValMask, d.TestMask,
		gnn.TrainConfig{Epochs: 50, LR: 0.02})
	if res.TestAcc < 0.65 {
		t.Fatalf("cluster-trained GCN accuracy = %v", res.TestAcc)
	}
	bytes, msgs := c.Traffic()
	if bytes == 0 || msgs == 0 {
		t.Fatal("no traffic recorded during training")
	}
}

// TestSemanticClusterCompresses: semantic traffic ≪ vanilla traffic on the
// same rounds.
func TestSemanticClusterCompresses(t *testing.T) {
	d, part := setup(t, 3)
	h := randMat(d.NumNodes(), 8, 7)
	van := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	sem := NewCluster(d.Graph, part, 3, true, core.PlanConfig{Grouping: core.GroupingConfig{Seed: 1}})
	van.Forward(h)
	sem.Forward(h)
	vb, _ := van.Traffic()
	sb, _ := sem.Traffic()
	if sb*2 > vb {
		t.Fatalf("semantic cluster traffic %d not well below vanilla %d", sb, vb)
	}
}

func TestBadPartitionPanics(t *testing.T) {
	d, _ := setup(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(d.Graph, []int{0, 1}, 2, false, core.PlanConfig{})
}

// TestSelfAdjointSemantic: ⟨A x, y⟩ == ⟨x, Aᵀ y⟩ through real message
// passing, fp32 tolerance.
func TestSelfAdjointSemantic(t *testing.T) {
	d, part := setup(t, 3)
	c := NewCluster(d.Graph, part, 3, true, core.PlanConfig{Grouping: core.GroupingConfig{K: 2, Seed: 11}})
	n := d.NumNodes()
	x, y := randMat(n, 3, 12), randMat(n, 3, 13)
	ax := c.Forward(x)
	aty := c.Backward(y)
	var lhs, rhs float64
	for i := range ax.Data {
		lhs += ax.Data[i] * y.Data[i]
		rhs += x.Data[i] * aty.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
		t.Fatalf("cluster aggregate not self-adjoint: %v vs %v", lhs, rhs)
	}
}

func BenchmarkClusterRoundVanilla(b *testing.B) {
	d := datasets.PubMedSim(1)
	part := partition.Partition(d.Graph, 4, partition.NodeCut, partition.Config{Seed: 1})
	c := NewCluster(d.Graph, part, 4, false, core.PlanConfig{})
	h := randMat(d.NumNodes(), 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(h)
	}
}

func BenchmarkClusterRoundSemantic(b *testing.B) {
	d := datasets.PubMedSim(1)
	part := partition.Partition(d.Graph, 4, partition.NodeCut, partition.Config{Seed: 1})
	c := NewCluster(d.Graph, part, 4, true, core.PlanConfig{Grouping: core.GroupingConfig{Seed: 1}})
	h := randMat(d.NumNodes(), 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(h)
	}
}

// TestQuantizedClusterWire: enabling wire quantization must shrink the real
// byte count substantially while keeping the aggregate close to exact.
func TestQuantizedClusterWire(t *testing.T) {
	d, part := setup(t, 3)
	// Realistic hidden width: headers amortize, so 4-bit packing shows its
	// ~3.5x savings (16B header + 8B meta + dim/2 vs 16B header + 4·dim).
	h := randMat(d.NumNodes(), 32, 40)
	fp := NewCluster(d.Graph, part, 3, true, core.PlanConfig{Grouping: core.GroupingConfig{Seed: 2}})
	q := NewCluster(d.Graph, part, 3, true, core.PlanConfig{Grouping: core.GroupingConfig{Seed: 2}})
	q.SetQuantization(4)
	outFP := fp.Forward(h)
	outQ := q.Forward(h)
	fb, _ := fp.Traffic()
	qb, _ := q.Traffic()
	if float64(qb)*2.5 >= float64(fb) {
		t.Fatalf("4-bit wire bytes %d not well below fp32 %d", qb, fb)
	}
	diff := tensor.Sub(outFP, outQ).MaxAbs()
	if diff > 0.25*(1+outFP.MaxAbs()) {
		t.Fatalf("quantized aggregate error too large: %v", diff)
	}
	// Invalid bits must panic via the validator.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bits=40")
		}
	}()
	q.SetQuantization(40)
}

// TestClusterPerLinkAccounting: the shard-and-merge plumbing must agree with
// the engine's analytic fabric on every individual link, not just the
// totals, and the Snapshot view must stay consistent with Traffic across
// rounds and resets.
func TestClusterPerLinkAccounting(t *testing.T) {
	d, part := setup(t, 3)
	h := randMat(d.NumNodes(), 5, 9)
	c := NewCluster(d.Graph, part, 3, false, core.PlanConfig{})
	eng := dist.NewEngine(d.Graph, part, 3, dist.Vanilla())

	c.Forward(h)
	c.Backward(h)
	eng.StartEpoch(0)
	eng.Forward(h)
	eng.Backward(h)

	snap := c.Snapshot()
	engSnap := eng.CaptureEpoch()
	if snap.TotalBytes != engSnap.TotalBytes || snap.TotalMessages != engSnap.TotalMessages ||
		snap.MaxInboundBytes != engSnap.MaxInboundBytes || snap.MaxOutboundBytes != engSnap.MaxOutboundBytes {
		t.Fatalf("cluster snapshot %+v vs engine %+v", snap, engSnap)
	}
	cb, cm := c.Traffic()
	if cb != snap.TotalBytes || cm != snap.TotalMessages {
		t.Fatalf("Traffic (%d, %d) disagrees with Snapshot (%d, %d)", cb, cm, snap.TotalBytes, snap.TotalMessages)
	}

	c.ResetTraffic()
	if cb, cm = c.Traffic(); cb != 0 || cm != 0 {
		t.Fatalf("traffic after reset = (%d, %d)", cb, cm)
	}
	// Counters accumulate again after a reset (shards were drained, not
	// carried over).
	c.Forward(h)
	eng.StartEpoch(1)
	eng.Forward(h)
	cb, _ = c.Traffic()
	if cb != eng.CaptureEpoch().TotalBytes {
		t.Fatalf("post-reset round: cluster %d B vs engine %d B", cb, eng.CaptureEpoch().TotalBytes)
	}
}
