// Package scgnn is the public API of the SC-GNN reproduction: a
// communication-efficient semantic compression for distributed training of
// graph neural networks (Wang, Wu, Wang — DAC 2024).
//
// Distributed full-graph GNN training spends most of its epoch exchanging
// boundary embeddings and gradients between partitions (the
// "aggregate-wall"). SC-GNN compresses that traffic by clustering boundary
// nodes into semantically cohesive groups (a squared-overlap similarity
// measure drives k-means), approximating each group's cross-partition edges
// by a full bipartite map, and fusing all of the group's messages into a
// single semantic message weighted by local-SALSA node weights. Residual
// one-to-one connections can be pruned entirely (differential optimization)
// with negligible accuracy cost.
//
// The package bundles everything the paper's pipeline needs: synthetic
// dataset generators calibrated to Reddit/Yelp/Ogbn-products/PubMed shapes,
// node-cut/edge-cut/random graph partitioners, a full-batch GCN/GraphSAGE
// training stack with hand-derived gradients, a byte-exact communication
// fabric with an analytic epoch-time model, the three SOTA baselines
// (sampling, quantization, delayed transmission), and harnesses that
// regenerate every table and figure of the paper's evaluation.
//
// # Quick start
//
//	ds, _ := scgnn.LoadDataset("reddit-sim", 1)
//	part := scgnn.PartitionGraph(ds, 4, scgnn.NodeCut, 1)
//	res := scgnn.Train(ds, part, 4, scgnn.Semantic(1), scgnn.TrainOptions{Epochs: 60})
//	fmt.Printf("accuracy %.4f, %.3f MB/epoch\n", res.TestAcc, res.MBPerEpoch())
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package scgnn

import (
	"fmt"
	"math/rand"

	"scgnn/internal/core"
	"scgnn/internal/datasets"
	"scgnn/internal/dist"
	"scgnn/internal/exp"
	"scgnn/internal/gnn"
	"scgnn/internal/graph"
	"scgnn/internal/minibatch"
	"scgnn/internal/partition"
	"scgnn/internal/worker"
)

// Dataset is a full-batch node-classification dataset: graph, features,
// labels, and train/val/test masks.
type Dataset = datasets.Dataset

// DatasetSpec parameterizes the synthetic dataset generator.
type DatasetSpec = datasets.Spec

// LoadDataset returns one of the four benchmark datasets by name:
// "reddit-sim", "yelp-sim", "ogbn-products-sim", or "pubmed-sim".
func LoadDataset(name string, seed int64) (*Dataset, error) {
	return datasets.ByName(name, seed)
}

// DatasetNames lists the benchmark datasets in the paper's order.
func DatasetNames() []string { return datasets.Names() }

// GenerateDataset builds a synthetic dataset from an explicit spec — use for
// custom densities, class counts, or homophily levels (Fig. 12(a) sweeps
// density this way).
func GenerateDataset(spec DatasetSpec) *Dataset { return datasets.Generate(spec) }

// PartitionMethod selects a graph partitioner.
type PartitionMethod = partition.Method

// Partitioner choices (paper Sec. 4 / Table 2): node-cut composes best with
// semantic compression; random-cut is the low-quality baseline.
const (
	NodeCut   = partition.NodeCut
	EdgeCut   = partition.EdgeCut
	RandomCut = partition.RandomCut
	// Multilevel is a METIS-style multilevel k-way partitioner — an
	// extension beyond the paper's three families, usually the smallest cut
	// on community-structured graphs.
	Multilevel = partition.Multilevel
)

// PartitionGraph splits the dataset's graph into nparts partitions and
// returns the node→partition assignment.
func PartitionGraph(ds *Dataset, nparts int, m PartitionMethod, seed int64) []int {
	return partition.Partition(ds.Graph, nparts, m, partition.Config{Seed: seed})
}

// PartitionStats summarizes partition quality (cut edges, boundary nodes,
// replication factor, balance).
type PartitionStats = partition.Stats

// EvaluatePartition computes quality statistics for an assignment.
func EvaluatePartition(ds *Dataset, part []int, nparts int) PartitionStats {
	return partition.Evaluate(ds.Graph, part, nparts)
}

// Method configures the cross-partition exchange of a training run. Feature
// flags compose — see Vanilla, Sampling, Quant, Delay, Semantic — and
// combinations reproduce the compatibility study of Fig. 12(b).
type Method = dist.Config

// Vanilla is the uncompressed per-edge exchange (Fig. 7(a)).
func Vanilla() Method { return dist.Vanilla() }

// Sampling transmits each cross connection with the given probability,
// rescaling kept messages to stay unbiased (BNS-GCN-style baseline).
func Sampling(rate float64, seed int64) Method { return dist.Sampling(rate, seed) }

// Quant transmits payloads at the given bit width via per-message affine
// quantization (AdaQP-style baseline).
func Quant(bits int) Method { return dist.Quant(bits) }

// Delay transmits fresh values every period epochs and replays stale values
// in between (Dorylus-style baseline).
func Delay(period int) Method { return dist.Delay(period) }

// Semantic is SC-GNN: cohesion-driven grouping at the EEP-selected group
// count plus in-group up-sampling compression.
func Semantic(seed int64) Method {
	return dist.Semantic(core.PlanConfig{Grouping: core.GroupingConfig{Seed: seed}})
}

// SemanticOptions tunes the semantic compressor beyond the defaults.
type SemanticOptions struct {
	// Groups fixes the k-means group count; 0 selects it at the elbow
	// equilibrium point (EEP) of the inertia curve.
	Groups int
	// DropO2O prunes residual one-to-one connections entirely — the
	// differential optimization of Sec. 5.3.
	DropO2O bool
	// Jaccard switches the similarity measure to the Jaccard baseline
	// (for ablations mirroring Fig. 6).
	Jaccard bool
	// Seed drives grouping.
	Seed int64
	// Workers caps the goroutines used by the offline planning pipeline
	// (per-pair plan builds, embedding fill, EEP sweep). 0 uses GOMAXPROCS;
	// the resulting plans are identical for any value.
	Workers int
}

func (opt SemanticOptions) planConfig() core.PlanConfig {
	cfg := core.GroupingConfig{K: opt.Groups, Seed: opt.Seed, Workers: opt.Workers}
	if opt.Jaccard {
		cfg.Sim = core.JaccardSimilarity{}
	}
	plan := core.PlanConfig{Grouping: cfg, Workers: opt.Workers}
	if opt.DropO2O {
		plan.Drop = core.DropO2O
	}
	return plan
}

// SemanticWith builds a semantic Method from explicit options.
func SemanticWith(opt SemanticOptions) Method {
	return dist.Semantic(opt.planConfig())
}

// TrainOptions controls a distributed training run.
type TrainOptions = dist.RunConfig

// Result reports accuracy, exact communication volume, and modeled epoch
// time for a run.
type Result = dist.Result

// Train runs distributed full-batch training of a GCN (or GraphSAGE via
// TrainOptions.Model) over the partitioned dataset, with the cross-partition
// halo carried by the given Method. Traffic is byte-exact; accuracy is
// measured, not modeled.
func Train(ds *Dataset, part []int, nparts int, m Method, opt TrainOptions) *Result {
	return dist.Run(ds, part, nparts, m, opt)
}

// ConnectionCensus tallies the cross-partition connection types of
// Fig. 2(c)/(d): O2O, O2M, M2O, M2M.
type ConnectionCensus = graph.ConnCensus

// CensusOf classifies every cross-partition connection of the partitioned
// graph (the Fig. 2(d) statistic).
func CensusOf(ds *Dataset, part []int, nparts int) ConnectionCensus {
	return graph.Census(graph.AllDBGs(ds.Graph, part, nparts))
}

// Plan is the static semantic-compression plan for one ordered partition
// pair: groups, residual O2O edges, and compression ratio.
type Plan = core.PairPlan

// BuildPlans constructs the semantic compression plan for every ordered
// partition pair (the offline step of Fig. 8, between graph partition and
// node update). The partition is validated first: a wrong-length vector,
// out-of-range ids, or an empty partition return an error.
func BuildPlans(ds *Dataset, part []int, nparts int, opt SemanticOptions) ([]*Plan, error) {
	return core.BuildAllPlans(ds.Graph, part, nparts, opt.planConfig())
}

// PlanCache retains per-pair plans across repartitions: Repartition diffs the
// new partition's boundary sets against the cached ones and rebuilds only the
// pairs that changed, with output bit-identical to a from-scratch BuildPlans.
type PlanCache = core.PlanCache

// NewPlanCache builds every pair's plan from scratch (same output as
// BuildPlans) and retains the state incremental repartitioning needs.
func NewPlanCache(ds *Dataset, part []int, nparts int, opt SemanticOptions) (*PlanCache, error) {
	return core.NewPlanCache(ds.Graph, part, nparts, opt.planConfig())
}

// ConcurrentResult reports a goroutine-runtime training run: accuracy plus
// the *real* encoded bytes that crossed worker boundaries.
type ConcurrentResult struct {
	TestAcc    float64
	BestValAcc float64
	// Bytes and Messages are measured off the actual wire-encoded buffers
	// exchanged between worker goroutines (fp32 payloads + 16-byte headers).
	Bytes, Messages int64
}

// TrainConcurrent trains a GCN on the goroutine-based distributed runtime
// (internal/worker): one goroutine per partition, real serialized message
// passing for every halo exchange. The full Method matrix runs concurrently
// — vanilla, semantic, sampling, fixed/adaptive quantization, error
// feedback, delayed transmission, and their Fig. 12(b) combinations — with
// the same flags Train accepts.
//
// Use Train for analytic traffic accounting and the modeled epoch-time cost;
// use TrainConcurrent when you want actual concurrency and measured wire
// bytes.
func TrainConcurrent(ds *Dataset, part []int, nparts int, m Method, train TrainOptions) *ConcurrentResult {
	cluster := worker.NewClusterFromConfig(ds.Graph, part, nparts, m)
	defer cluster.Close()

	if train.Hidden == 0 {
		train.Hidden = 32
	}
	if train.Epochs == 0 {
		train.Epochs = 60
	}
	if train.LR == 0 {
		train.LR = 0.02
	}
	rng := rand.New(rand.NewSource(train.Seed*7919 + 17))
	var model gnn.Model
	switch train.Model {
	case "", "gcn":
		model = gnn.NewGCN(cluster, []int{ds.FeatureDim(), train.Hidden, ds.NumClasses}, rng)
	case "sage":
		model = gnn.NewSAGE(cluster, []int{ds.FeatureDim(), train.Hidden, ds.NumClasses}, rng)
	default:
		panic(fmt.Sprintf("scgnn: TrainConcurrent supports gcn/sage, got %q", train.Model))
	}
	res := gnn.Train(model, ds.Features, ds.Labels, ds.TrainMask, ds.ValMask, ds.TestMask,
		gnn.TrainConfig{Epochs: train.Epochs, LR: train.LR})
	bytes, msgs := cluster.Traffic()
	return &ConcurrentResult{
		TestAcc:    res.TestAcc,
		BestValAcc: res.BestValAcc,
		Bytes:      bytes,
		Messages:   msgs,
	}
}

// ExperimentIDs lists the reproduction experiments (one per paper table or
// figure; see DESIGN.md §4).
func ExperimentIDs() []string { return exp.IDs() }

// RunExperiment regenerates one paper table/figure and returns its rendered
// report. Unknown ids return "".
func RunExperiment(id string, seed int64, epochs int) string {
	b, ok := exp.Registry[id]
	if !ok {
		return ""
	}
	return b(exp.Options{Seed: seed, Epochs: epochs}).String()
}

// TuneResult reports a budget-constrained method selection.
type TuneResult = dist.TuneResult

// AutoTune picks the least-lossy exchange whose per-epoch traffic fits the
// byte budget — vanilla when it fits, escalating through quantization and
// semantic compression when it does not (the paper's resource-constrained
// deployment scenario).
func AutoTune(ds *Dataset, part []int, nparts int, budgetBytes float64, seed int64) *TuneResult {
	return dist.AutoTune(ds, part, nparts, budgetBytes, seed)
}

// MinibatchConfig controls neighbor-sampled (GraphSAGE-style) minibatch
// training — the inductive alternative to the paper's full-batch
// partition-parallel regime.
type MinibatchConfig = minibatch.TrainConfig

// MinibatchResult reports a minibatch run.
type MinibatchResult = minibatch.Result

// TrainMinibatch runs neighbor-sampled SAGE training (bounded-fanout
// computation blocks per step) and evaluates on exact blocks.
func TrainMinibatch(ds *Dataset, cfg MinibatchConfig) *MinibatchResult {
	return minibatch.Train(ds, cfg)
}
