package scgnn_test

import (
	"strings"
	"testing"

	"scgnn"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := scgnn.LoadDataset("pubmed-sim", 1)
	if err != nil {
		t.Fatal(err)
	}
	part := scgnn.PartitionGraph(ds, 2, scgnn.NodeCut, 1)
	stats := scgnn.EvaluatePartition(ds, part, 2)
	if stats.CutEdges == 0 {
		t.Fatal("no cut edges")
	}

	van := scgnn.Train(ds, part, 2, scgnn.Vanilla(), scgnn.TrainOptions{Epochs: 30, Seed: 1})
	sem := scgnn.Train(ds, part, 2, scgnn.Semantic(1), scgnn.TrainOptions{Epochs: 30, Seed: 1})
	if sem.BytesPerEpoch >= van.BytesPerEpoch {
		t.Fatalf("semantic %v not below vanilla %v", sem.BytesPerEpoch, van.BytesPerEpoch)
	}
	if sem.TestAcc < 0.6 {
		t.Fatalf("semantic accuracy %v", sem.TestAcc)
	}
}

func TestLoadDatasetUnknown(t *testing.T) {
	if _, err := scgnn.LoadDataset("imagenet", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestSemanticWithOptions(t *testing.T) {
	m := scgnn.SemanticWith(scgnn.SemanticOptions{Groups: 4, DropO2O: true, Seed: 2})
	if m.MethodName() != "semantic" {
		t.Fatalf("MethodName = %q", m.MethodName())
	}
	if !m.Plan.Drop.O2O {
		t.Fatal("DropO2O not applied")
	}
}

func TestBuildPlansAndCensus(t *testing.T) {
	ds, _ := scgnn.LoadDataset("pubmed-sim", 1)
	part := scgnn.PartitionGraph(ds, 4, scgnn.NodeCut, 1)
	census := scgnn.CensusOf(ds, part, 4)
	if census.TotalEdges() == 0 {
		t.Fatal("empty census")
	}
	plans, err := scgnn.BuildPlans(ds, part, 4, scgnn.SemanticOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	var edges int
	for _, p := range plans {
		edges += p.Grouping.DBG.NumEdges()
		if p.CompressionRatio() < 1 {
			t.Fatalf("plan %v expands traffic", p)
		}
	}
	if edges != census.TotalEdges() {
		t.Fatalf("plans cover %d edges, census says %d", edges, census.TotalEdges())
	}
}

func TestPlanCacheFacade(t *testing.T) {
	ds, _ := scgnn.LoadDataset("pubmed-sim", 1)
	part := scgnn.PartitionGraph(ds, 3, scgnn.NodeCut, 1)
	pc, err := scgnn.NewPlanCache(ds, part, 3, scgnn.SemanticOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Plans()) == 0 {
		t.Fatal("no plans")
	}
	if dirty, err := pc.Repartition(part); err != nil || len(dirty) != 0 {
		t.Fatalf("no-op repartition: dirty=%v err=%v", dirty, err)
	}
	moved := append([]int(nil), part...)
	for u := range moved {
		if moved[u] == 0 {
			moved[u] = 1
			break
		}
	}
	if _, err := pc.Repartition(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Repartition(part[:10]); err == nil {
		t.Fatal("short partition accepted")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := scgnn.ExperimentIDs()
	if len(ids) != 25 { // 12 paper experiments + 12 ablations + the scale study
		t.Fatalf("experiment count = %d, want 25", len(ids))
	}
	out := scgnn.RunExperiment("fig4a", 1, 5)
	if !strings.Contains(out, "fig4a") {
		t.Fatalf("report missing id:\n%s", out)
	}
	if scgnn.RunExperiment("nope", 1, 5) != "" {
		t.Fatal("unknown experiment should return empty")
	}
}

func TestGenerateDatasetFacade(t *testing.T) {
	ds := scgnn.GenerateDataset(scgnn.DatasetSpec{
		Name: "custom", Nodes: 200, AvgDegree: 6, Classes: 3, FeatureDim: 8, Seed: 3,
	})
	if ds.NumNodes() != 200 {
		t.Fatalf("nodes = %d", ds.NumNodes())
	}
	if len(scgnn.DatasetNames()) != 4 {
		t.Fatal("dataset registry wrong")
	}
}

func TestTrainConcurrentFacade(t *testing.T) {
	ds, _ := scgnn.LoadDataset("pubmed-sim", 1)
	part := scgnn.PartitionGraph(ds, 2, scgnn.NodeCut, 1)
	van := scgnn.TrainConcurrent(ds, part, 2, scgnn.Vanilla(),
		scgnn.TrainOptions{Epochs: 20, Seed: 1})
	sem := scgnn.TrainConcurrent(ds, part, 2, scgnn.SemanticWith(scgnn.SemanticOptions{Seed: 1}),
		scgnn.TrainOptions{Epochs: 20, Seed: 1})
	if van.Bytes == 0 || sem.Bytes == 0 {
		t.Fatal("no wire traffic measured")
	}
	if sem.Bytes >= van.Bytes {
		t.Fatalf("semantic wire bytes %d not below vanilla %d", sem.Bytes, van.Bytes)
	}
	if sem.TestAcc < 0.6 {
		t.Fatalf("concurrent semantic accuracy = %v", sem.TestAcc)
	}
}

func TestAutoTuneFacade(t *testing.T) {
	ds, _ := scgnn.LoadDataset("pubmed-sim", 1)
	part := scgnn.PartitionGraph(ds, 2, scgnn.NodeCut, 1)
	res := scgnn.AutoTune(ds, part, 2, 1e12, 1)
	if res.Config.MethodName() != "vanilla" {
		t.Fatalf("AutoTune = %s", res.Config.MethodName())
	}
}

func TestTrainMinibatchFacade(t *testing.T) {
	ds, _ := scgnn.LoadDataset("pubmed-sim", 1)
	res := scgnn.TrainMinibatch(ds, scgnn.MinibatchConfig{Epochs: 4, Fanouts: []int{6, 6}, Seed: 1})
	if res.TestAcc < 0.55 {
		t.Fatalf("minibatch accuracy = %v", res.TestAcc)
	}
}
